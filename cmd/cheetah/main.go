// Command cheetah runs a workload under the Cheetah profiler and prints
// its false sharing report, in the style of paper Figure 5.
//
// Usage:
//
//	cheetah [-threads 16] [-scale 1.0] [-period 64] [-machine opteron48] [-words] [-candidates] <workload>
//	cheetah -record trace.out [-record-sampled] [-record-binary] <workload>
//	cheetah -replay trace.out
//	cheetah -replay-stream trace.out
//	cheetah -index trace.out [-record indexed.trace]
//	cheetah -trace-info trace.out
//	cheetah -synth-trace 1000000 -record big.trace
//	cheetah -import-perf samples.txt [-record out.trace] [-record-binary] [-replay out.trace]
//	cheetah -import-ibs samples.csv [-record out.trace] [-record-binary] [-replay out.trace]
//	cheetah ... [-metrics-addr 127.0.0.1:9137] [-span-log spans.jsonl] [-chrome-trace trace.json]
//	cheetah -list
//
// -metrics-addr serves live Prometheus/JSON metrics and pprof for the
// duration of the run; -span-log and -chrome-trace record structured
// spans (JSONL, and Chrome trace-event format for chrome://tracing).
// All three are opt-in and strictly off the report path: the printed
// report is byte-identical with or without them.
//
// Workloads are the built-in Phoenix/PARSEC analogs, e.g.:
//
//	cheetah linear_regression
//	cheetah -threads 8 -words streamcluster
//
// -record writes a memory-access trace of the profiled run; -replay
// reconstructs a program from a trace and profiles it on a machine with
// the recorded core count. Replaying a full (non-sampled) trace under
// the same flags prints a report byte-identical to the recorded run's.
// A trace also replays anywhere a workload name is accepted, as
// `trace:<path>`.
//
// -index rewrites any decodable trace in the indexed binary v3 framing
// (atomically, in place unless -record names the output): the same
// record stream plus a seekable index block. Indexed traces replay with
// bounded memory via -replay-stream, which loads one phase's records at
// a time and prints a report byte-identical to -replay's. -trace-info
// prints a trace's metadata without building its program (reading only
// the index and layout for indexed traces); -synth-trace writes a
// deterministic indexed trace of the requested access count to -record,
// for memory-bound regression gates.
//
// -import-perf converts `perf script` output of a `perf mem record`
// session, and -import-ibs an AMD IBS CSV dump, into a native trace
// written to the -record path (default: the input path + ".trace", in
// the binary framing with -record-binary). Passing -replay with the
// same path additionally profiles the imported trace immediately.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	cheetah "repro"
	"repro/internal/atomicfile"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/pmu"
	"repro/internal/trace"
	traceimport "repro/internal/trace/import"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cheetah", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threads := fs.Int("threads", 16, "worker threads per parallel phase")
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	sched := fs.String("sched", "",
		"engine thread scheduler: heap (default) or calendar; reports are byte-identical either way")
	machineName := fs.String("machine", "",
		"machine-model preset to simulate (topology, line size, protocol); empty = opteron48. Unlike -sched this changes results")
	period := fs.Uint64("period", 0, "sampling period in instructions (0 = calibrated default)")
	words := fs.Bool("words", false, "print word-level access detail for each instance")
	candidates := fs.Bool("candidates", false, "also print non-significant candidates")
	fixed := fs.Bool("fixed", false, "run the padded (fixed) layout instead of the original")
	list := fs.Bool("list", false, "list available workloads and exit")
	record := fs.String("record", "", "write a memory-access trace of the profiled run to this file")
	recordSampled := fs.Bool("record-sampled", false, "record only PMU-sampled accesses (compact; replay is approximate)")
	recordBinary := fs.Bool("record-binary", false, "write the trace in the compact binary framing instead of text")
	replay := fs.String("replay", "", "replay a recorded trace instead of running a workload")
	replayStream := fs.String("replay-stream", "",
		"stream-replay an indexed trace with bounded memory (report is byte-identical to -replay)")
	indexPath := fs.String("index", "",
		"rewrite a trace in the indexed binary v3 framing, in place or to -record")
	traceInfo := fs.String("trace-info", "", "print a trace file's metadata and exit")
	synthTrace := fs.Uint64("synth-trace", 0,
		"write a synthetic indexed trace with this many accesses to -record and exit")
	importPerf := fs.String("import-perf", "",
		"convert `perf script` output of a perf mem record session into a native trace (written to -record)")
	importIBS := fs.String("import-ibs", "",
		"convert an AMD IBS CSV dump into a native trace (written to -record)")
	metricsAddr := fs.String("metrics-addr", "",
		"serve live metrics (Prometheus at /metrics, JSON at /metrics.json) and pprof on this address (e.g. 127.0.0.1:9137, or :0)")
	spanLog := fs.String("span-log", "", "append structured span/event records (JSONL) to this file")
	chromeTrace := fs.String("chrome-trace", "", "write a Chrome trace-event file (load in chrome://tracing) to this path")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, w := range workload.All() {
			note := ""
			switch w.FS {
			case workload.SignificantFS:
				note = " [significant false sharing: " + w.FSSite + "]"
			case workload.MinorFS:
				note = " [minor false sharing: " + w.FSSite + "]"
			}
			fmt.Fprintf(stdout, "%-20s %s%s\n", w.Name, w.Suite, note)
		}
		fmt.Fprintf(stdout, "%-20s %s\n", "trace:<path>", "trace  [replays a recorded memory-access trace]")
		return 0
	}

	if !exec.ValidScheduler(*sched) {
		fmt.Fprintf(stderr, "cheetah: unknown scheduler %q; available: %s\n",
			*sched, strings.Join(exec.SchedulerNames(), ", "))
		return 2
	}
	if _, ok := machine.Preset(*machineName); !ok {
		fmt.Fprintf(stderr, "cheetah: unknown machine preset %q; available: %s\n",
			*machineName, strings.Join(machine.Names(), ", "))
		return 2
	}

	// Observability is opt-in and strictly off the report path: the
	// profile output is byte-identical with or without these flags.
	obsCleanup, obsAddr, err := obs.Setup(*metricsAddr, *spanLog, *chromeTrace)
	if err != nil {
		fmt.Fprintf(stderr, "cheetah: %v\n", err)
		return 1
	}
	defer obsCleanup()
	if obsAddr != "" {
		fmt.Fprintf(stderr, "cheetah: serving metrics and pprof on http://%s\n", obsAddr)
	}

	var cfg pmu.Config
	if *period != 0 {
		cfg = pmu.Config{Period: *period, Jitter: *period / 4, HandlerCycles: 4, SetupCycles: 4700}
	} else {
		cfg = harness.DetectionPMU()
	}

	rec := recordOptions{path: *record, sampled: *recordSampled, binary: *recordBinary}

	if *traceInfo != "" {
		return runTraceInfo(*traceInfo, stdout, stderr)
	}
	if *synthTrace != 0 {
		return runSynth(*synthTrace, *threads, rec.path, stderr)
	}
	if *indexPath != "" {
		return runIndex(*indexPath, rec.path, stderr)
	}
	if *replayStream != "" {
		if fs.NArg() != 0 {
			fmt.Fprintln(stderr, "usage: cheetah -replay-stream <trace> takes no workload argument")
			return 2
		}
		return runReplayStream(*replayStream, cfg, rec, *sched, *machineName, *words, *candidates, stdout, stderr)
	}

	if *importPerf != "" || *importIBS != "" {
		if *importPerf != "" && *importIBS != "" {
			fmt.Fprintln(stderr, "cheetah: -import-perf and -import-ibs are mutually exclusive")
			return 2
		}
		if fs.NArg() != 0 {
			fmt.Fprintln(stderr, "usage: cheetah -import-perf/-import-ibs <dump> takes no workload argument")
			return 2
		}
		if code := runImport(*importPerf, *importIBS, rec, stderr); code != 0 {
			return code
		}
		if *replay == "" {
			return 0
		}
		// Fall through to profile the freshly imported trace; the
		// recording options are spent (re-recording the replay onto the
		// file being replayed would truncate it mid-read).
		return runReplay(*replay, cfg, recordOptions{}, *sched, *machineName, *words, *candidates, stdout, stderr)
	}

	if *replay != "" {
		if fs.NArg() != 0 {
			fmt.Fprintln(stderr, "usage: cheetah -replay <trace> takes no workload argument")
			return 2
		}
		return runReplay(*replay, cfg, rec, *sched, *machineName, *words, *candidates, stdout, stderr)
	}

	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: cheetah [flags] <workload>  (or cheetah -list)")
		fs.Usage()
		return 2
	}
	name := fs.Arg(0)
	if workload.IsTraceName(name) {
		// Route trace pseudo-workloads through the replay path: same
		// semantics as -replay (recorded core count, friendly errors).
		// -record still applies, re-recording the replayed run — which
		// also converts between framings.
		return runReplay(strings.TrimPrefix(name, workload.TracePrefix), cfg, rec, *sched, *machineName, *words, *candidates, stdout, stderr)
	}
	w, ok := workload.ByName(name)
	if !ok {
		fmt.Fprintf(stderr, "cheetah: unknown workload %q; available: %s\n",
			name, strings.Join(workload.Names(), ", "))
		return 2
	}

	ccfg := cheetah.Config{Engine: exec.Config{Sched: *sched}}
	if m, ok := machine.Preset(*machineName); ok && *machineName != "" {
		ccfg.Machine = m
	}
	sys := cheetah.New(ccfg)
	prog := w.Build(sys, workload.Params{Threads: *threads, Scale: *scale, Fixed: *fixed})

	report, res, err := profileMaybeRecorded(sys, prog, cfg, rec, stderr)
	if err != nil {
		return 1
	}
	printReport(stdout, report, res, *words, *candidates)
	return 0
}

// runImport converts a real-PMU dump (exactly one of perfPath/ibsPath
// is set) into a native trace at rec.path, defaulting to the input path
// + ".trace". The import is staged through a temp file and renamed, so
// a failed import never leaves a truncated trace behind.
func runImport(perfPath, ibsPath string, rec recordOptions, stderr io.Writer) int {
	inPath, kind := perfPath, "perf script"
	importer := traceimport.ImportPerfScript
	if ibsPath != "" {
		inPath, kind = ibsPath, "IBS"
		importer = traceimport.ImportIBS
	}
	outPath := rec.path
	if outPath == "" {
		outPath = inPath + ".trace"
	}
	in, err := os.Open(inPath)
	if err != nil {
		fmt.Fprintf(stderr, "cheetah: importing %s: %v\n", inPath, err)
		return 1
	}
	defer in.Close()
	out, err := atomicfile.Create(outPath)
	if err != nil {
		fmt.Fprintf(stderr, "cheetah: importing %s: %v\n", inPath, err)
		return 1
	}
	defer out.Abort() // no-op after a successful Commit
	var enc trace.Encoder
	if rec.binary {
		enc = trace.NewBinaryEncoder(out)
	} else {
		enc = trace.NewTextEncoder(out)
	}
	stats, err := importer(in, enc, traceimport.Options{})
	if err == nil {
		err = out.Commit()
	}
	if err != nil {
		fmt.Fprintf(stderr, "cheetah: importing %s: %v\n", inPath, err)
		return 1
	}
	skipped := fmt.Sprintf("%d skipped", stats.Skipped)
	if stats.Skipped > 0 {
		skipped = fmt.Sprintf("%d skipped: %d parse, %d non-mem, %d kernel",
			stats.Skipped, stats.SkippedParse, stats.SkippedNonMem, stats.SkippedKernel)
	}
	fmt.Fprintf(stderr, "cheetah: imported %d %s samples (%s) as %d threads over %d phases to %s\n",
		stats.Samples, kind, skipped, stats.Threads, stats.Phases, outPath)
	return 0
}

// recordOptions bundles the -record* flags.
type recordOptions struct {
	path    string
	sampled bool
	binary  bool
}

// profileMaybeRecorded profiles prog, recording a trace when requested.
// Errors are reported to stderr.
func profileMaybeRecorded(sys *cheetah.System, prog cheetah.Program, cfg pmu.Config, rec recordOptions, stderr io.Writer) (*cheetah.Report, cheetah.Result, error) {
	if rec.path == "" {
		report, res := sys.Profile(prog, cheetah.ProfileOptions{PMU: cfg})
		return report, res, nil
	}
	report, res, err := profileRecorded(sys, prog, cfg, rec.path, rec.sampled, rec.binary)
	if err != nil {
		fmt.Fprintf(stderr, "cheetah: recording %s: %v\n", rec.path, err)
		return nil, cheetah.Result{}, err
	}
	fmt.Fprintf(stderr, "cheetah: wrote trace to %s\n", rec.path)
	return report, res, nil
}

// profileRecorded profiles prog while streaming its accesses to a trace
// file. The recorder probes charge zero cycles, so the report matches an
// unrecorded profile of the same program.
func profileRecorded(sys *cheetah.System, prog cheetah.Program, cfg pmu.Config, path string, sampled, binary bool) (*cheetah.Report, cheetah.Result, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, cheetah.Result{}, err
	}
	var enc trace.Encoder
	if binary {
		enc = trace.NewBinaryEncoder(f)
	} else {
		enc = trace.NewTextEncoder(f)
	}
	var probes []exec.Probe
	traceErr := func() error { return nil }
	fp := sys.Model().Fingerprint()
	if sampled {
		sr := trace.NewSampledRecorder(cfg, enc, sys.Heap(), sys.Globals())
		sr.SetMachine(fp)
		probes = sr.Probes()
		traceErr = sr.Err
	} else {
		rec := trace.NewRecorder(enc, sys.Heap(), sys.Globals())
		rec.SetMachine(fp)
		probes = []exec.Probe{rec}
		traceErr = rec.Err
	}
	prof := sys.NewProfiler(cheetah.ProfileOptions{PMU: cfg})
	res := sys.RunWith(prog, append(prof.Probes(), probes...)...)
	if err := traceErr(); err != nil {
		f.Close()
		return nil, cheetah.Result{}, err
	}
	if err := f.Close(); err != nil {
		return nil, cheetah.Result{}, err
	}
	return prof.Report(), res, nil
}

// noteMachine extracts the `machine=<preset>` provenance note a recorded
// run stamped, if any; traces from canonical-default runs carry none.
func noteMachine(notes []string) string {
	for _, n := range notes {
		if name, ok := strings.CutPrefix(n, "machine="); ok {
			return name
		}
	}
	return ""
}

// replayConfig builds the system configuration for a replay: the
// recorded core count, the selected scheduler, and the machine model —
// the -machine flag when given, else the trace's own `machine=` note.
// An unknown noted preset (a trace from a newer build) fails rather
// than silently replaying on the wrong machine.
func replayConfig(cores int, sched, machineSel string, notes []string) (cheetah.Config, error) {
	ccfg := cheetah.Config{Cores: cores, Engine: exec.Config{Sched: sched}}
	name := machineSel
	if name == "" {
		name = noteMachine(notes)
	}
	if name != "" {
		m, ok := machine.Preset(name)
		if !ok {
			return ccfg, fmt.Errorf("trace records unknown machine preset %q; available: %s",
				name, strings.Join(machine.Names(), ", "))
		}
		ccfg.Machine = m
	}
	return ccfg, nil
}

// runReplay reconstructs a program from a trace file and profiles it on
// a machine with the recorded core count, optionally re-recording it
// (which converts between framings and full/sampled fidelity). The
// replayed program runs under the selected scheduler like any workload,
// and on the recorded machine model unless -machine overrides it.
func runReplay(path string, cfg pmu.Config, rec recordOptions, sched, machineSel string, words, candidates bool, stdout, stderr io.Writer) int {
	rp, err := trace.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "cheetah: reading trace: %v\n", err)
		return 1
	}
	ccfg, err := replayConfig(rp.Cores, sched, machineSel, rp.Notes)
	if err != nil {
		fmt.Fprintf(stderr, "cheetah: %v\n", err)
		return 1
	}
	sys := cheetah.New(ccfg)
	if err := rp.Prepare(sys.Heap(), sys.Globals()); err != nil {
		fmt.Fprintf(stderr, "cheetah: preparing trace: %v\n", err)
		return 1
	}
	report, res, err := profileMaybeRecorded(sys, rp.Program(), cfg, rec, stderr)
	if err != nil {
		return 1
	}
	printReport(stdout, report, res, words, candidates)
	return 0
}

// runReplayStream profiles an indexed trace through the streaming
// replayer: the layout restores up front, but each phase's access
// records load from disk only when the engine reaches the phase, so
// peak memory is bounded by the largest phase. The report (and exit
// behaviour) match runReplay on the same trace byte for byte.
func runReplayStream(path string, cfg pmu.Config, rec recordOptions, sched, machineSel string, words, candidates bool, stdout, stderr io.Writer) int {
	sr, err := trace.OpenStream(path)
	if err != nil {
		fmt.Fprintf(stderr, "cheetah: opening indexed trace: %v\n", err)
		return 1
	}
	ccfg, err := replayConfig(sr.Cores, sched, machineSel, sr.Notes)
	if err != nil {
		fmt.Fprintf(stderr, "cheetah: %v\n", err)
		return 1
	}
	sys := cheetah.New(ccfg)
	if err := sr.Prepare(sys.Heap(), sys.Globals()); err != nil {
		fmt.Fprintf(stderr, "cheetah: preparing trace: %v\n", err)
		return 1
	}
	report, res, err := profileMaybeRecorded(sys, sr.Program(), cfg, rec, stderr)
	if err != nil {
		return 1
	}
	printReport(stdout, report, res, words, candidates)
	return 0
}

// runIndex rewrites a trace (any decodable framing) as an indexed
// binary v3 file, staged through a temp file so a failed rewrite never
// clobbers the input. With no -record path the trace is replaced in
// place.
func runIndex(inPath, outPath string, stderr io.Writer) int {
	if outPath == "" {
		outPath = inPath
	}
	in, err := os.Open(inPath)
	if err != nil {
		fmt.Fprintf(stderr, "cheetah: indexing %s: %v\n", inPath, err)
		return 1
	}
	defer in.Close()
	out, err := atomicfile.Create(outPath)
	if err != nil {
		fmt.Fprintf(stderr, "cheetah: indexing %s: %v\n", inPath, err)
		return 1
	}
	defer out.Abort() // no-op after a successful Commit
	enc := trace.NewIndexedEncoder(out)
	d := trace.NewDecoder(in)
	for {
		ev, err := d.Next()
		if err == io.EOF {
			break
		}
		if err == nil {
			err = enc.Encode(ev)
		}
		if err != nil {
			fmt.Fprintf(stderr, "cheetah: indexing %s: %v\n", inPath, err)
			return 1
		}
	}
	err = enc.Close()
	if err == nil {
		err = out.Commit()
	}
	if err != nil {
		fmt.Fprintf(stderr, "cheetah: indexing %s: %v\n", inPath, err)
		return 1
	}
	fmt.Fprintf(stderr, "cheetah: wrote indexed trace to %s\n", outPath)
	return 0
}

// runTraceInfo prints a trace's metadata. Indexed traces answer from
// the index and layout regions without reading their access records.
func runTraceInfo(path string, stdout, stderr io.Writer) int {
	m, err := trace.ReadMetaFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "cheetah: inspecting %s: %v\n", path, err)
		return 1
	}
	fmt.Fprintf(stdout, "name:     %s\ncores:    %d\nframing:  %s\nindexed:  %v\n",
		m.Name, m.Cores, m.Framing, m.Indexed)
	fmt.Fprintf(stdout, "accesses: %d\nsymbols:  %d\nobjects:  %d\nphases:   %d (max index %d)\nthreads:  %d\n",
		m.Accesses, m.Symbols, m.Objects, m.Phases, m.MaxPhase, m.Threads)
	for _, note := range m.Notes {
		fmt.Fprintf(stdout, "note:     %s\n", note)
	}
	return 0
}

// runSynth writes a deterministic synthetic indexed trace for
// memory-bound regression gates.
func runSynth(accesses uint64, threads int, outPath string, stderr io.Writer) int {
	if outPath == "" {
		fmt.Fprintln(stderr, "cheetah: -synth-trace requires -record <path>")
		return 2
	}
	out, err := atomicfile.Create(outPath)
	if err != nil {
		fmt.Fprintf(stderr, "cheetah: writing %s: %v\n", outPath, err)
		return 1
	}
	defer out.Abort()
	enc := trace.NewIndexedEncoder(out)
	err = trace.WriteSynthetic(enc, trace.SynthConfig{Accesses: accesses, Threads: threads})
	if err == nil {
		err = enc.Close()
	}
	if err == nil {
		err = out.Commit()
	}
	if err != nil {
		fmt.Fprintf(stderr, "cheetah: writing %s: %v\n", outPath, err)
		return 1
	}
	fmt.Fprintf(stderr, "cheetah: wrote synthetic indexed trace to %s\n", outPath)
	return 0
}

// printReport renders the report sections shared by the profile, record
// and replay paths. The bytes come from harness.RenderDetectionReport,
// the same renderer the cheetahd gateway serves reports through, so the
// two surfaces cannot drift apart.
func printReport(stdout io.Writer, report *core.Report, res cheetah.Result, words, candidates bool) {
	fmt.Fprint(stdout, harness.RenderDetectionReport(report, res, words, candidates))
}
