// Command cheetah runs a workload under the Cheetah profiler and prints
// its false sharing report, in the style of paper Figure 5.
//
// Usage:
//
//	cheetah [-threads 16] [-scale 1.0] [-period 64] [-words] [-candidates] <workload>
//	cheetah -list
//
// Workloads are the built-in Phoenix/PARSEC analogs, e.g.:
//
//	cheetah linear_regression
//	cheetah -threads 8 -words streamcluster
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	cheetah "repro"
	"repro/internal/harness"
	"repro/internal/pmu"
	"repro/internal/workload"
)

func main() {
	threads := flag.Int("threads", 16, "worker threads per parallel phase")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	period := flag.Uint64("period", 0, "sampling period in instructions (0 = calibrated default)")
	words := flag.Bool("words", false, "print word-level access detail for each instance")
	candidates := flag.Bool("candidates", false, "also print non-significant candidates")
	fixed := flag.Bool("fixed", false, "run the padded (fixed) layout instead of the original")
	list := flag.Bool("list", false, "list available workloads and exit")
	flag.Parse()

	if *list {
		for _, w := range workload.All() {
			fs := ""
			switch w.FS {
			case workload.SignificantFS:
				fs = " [significant false sharing: " + w.FSSite + "]"
			case workload.MinorFS:
				fs = " [minor false sharing: " + w.FSSite + "]"
			}
			fmt.Printf("%-20s %s%s\n", w.Name, w.Suite, fs)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cheetah [flags] <workload>  (or cheetah -list)")
		flag.Usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	w, ok := workload.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "cheetah: unknown workload %q; available: %s\n",
			name, strings.Join(workload.Names(), ", "))
		os.Exit(2)
	}

	sys := cheetah.New(cheetah.Config{})
	prog := w.Build(sys, workload.Params{Threads: *threads, Scale: *scale, Fixed: *fixed})

	var cfg pmu.Config
	if *period != 0 {
		cfg = pmu.Config{Period: *period, Jitter: *period / 4, HandlerCycles: 4, SetupCycles: 4700}
	} else {
		cfg = harness.DetectionPMU()
	}
	report, res := sys.Profile(prog, cheetah.ProfileOptions{PMU: cfg})

	fmt.Print(report.Format())
	if *words {
		for i := range report.Instances {
			fmt.Println()
			fmt.Print(report.Instances[i].FormatWords())
		}
	}
	if *candidates && len(report.Candidates) > 0 {
		fmt.Printf("\n%d further candidates (true sharing or below significance thresholds):\n",
			len(report.Candidates))
		for _, c := range report.Candidates {
			kind := "false sharing (insignificant)"
			if !c.FalseSharing {
				kind = "true sharing"
			}
			fmt.Printf("  %v..%v  %-30s invalidations %d\n", c.Object.Start, c.Object.End, kind, c.Invalidations)
		}
	}
	fmt.Printf("\nruntime %d cycles across %d phases\n", res.TotalCycles, len(res.Phases))
}
