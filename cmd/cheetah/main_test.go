package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, errOut.String())
	}
	for _, want := range []string{"linear_regression", "streamcluster", "figure1", "trace:<path>"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunProfilesWorkload(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-threads", "4", "-scale", "0.2", "linear_regression"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, errOut.String())
	}
	for _, want := range []string{"runtime", "phases"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunSchedFlag: an invalid -sched is diagnosed before any work,
// and the calendar scheduler prints the byte-identical report the heap
// prints — the CLI edge of the cross-scheduler equivalence guarantee.
func TestRunSchedFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-sched", "lifo", "figure1"}, &out, &errOut); code != 2 {
		t.Fatalf("-sched lifo: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown scheduler") {
		t.Errorf("stderr missing scheduler diagnosis:\n%s", errOut.String())
	}

	args := []string{"-threads", "4", "-scale", "0.1", "figure1"}
	var heapOut, calOut, errs strings.Builder
	if code := run(append([]string{"-sched", "heap"}, args...), &heapOut, &errs); code != 0 {
		t.Fatalf("heap run: exit %d, stderr:\n%s", code, errs.String())
	}
	if code := run(append([]string{"-sched", "calendar"}, args...), &calOut, &errs); code != 0 {
		t.Fatalf("calendar run: exit %d, stderr:\n%s", code, errs.String())
	}
	if heapOut.String() != calOut.String() {
		t.Errorf("report differs across schedulers:\nheap:\n%s\ncalendar:\n%s",
			heapOut.String(), calOut.String())
	}
}

func TestRunRejectsUnknownWorkload(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"no_such_workload"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown workload") {
		t.Errorf("stderr missing diagnosis:\n%s", errOut.String())
	}
}

func TestRunRejectsMissingArgument(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestRunHelpExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Fatalf("-h exit code %d, want 0", code)
	}
	for _, want := range []string{"-threads", "-record", "-replay"} {
		if !strings.Contains(errOut.String(), want) {
			t.Errorf("usage text missing %q:\n%s", want, errOut.String())
		}
	}
}

// TestRunRecordReplayRoundTrip drives the full CLI surface: -record
// writes a trace while printing the report, -replay (and the
// trace:<path> pseudo-workload spelling) reproduce that report byte for
// byte.
func TestRunRecordReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig1.trace")
	var recOut, recErr strings.Builder
	code := run([]string{"-record", path, "-threads", "4", "-scale", "0.05", "figure1"}, &recOut, &recErr)
	if code != 0 {
		t.Fatalf("record exit code %d, stderr:\n%s", code, recErr.String())
	}
	if !strings.Contains(recErr.String(), "wrote trace") {
		t.Errorf("stderr missing trace confirmation:\n%s", recErr.String())
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file not written: %v", err)
	}

	var repOut, repErr strings.Builder
	if code := run([]string{"-replay", path}, &repOut, &repErr); code != 0 {
		t.Fatalf("replay exit code %d, stderr:\n%s", code, repErr.String())
	}
	if repOut.String() != recOut.String() {
		t.Errorf("-replay output differs from recorded run\n--- recorded ---\n%s\n--- replayed ---\n%s",
			recOut.String(), repOut.String())
	}

	var wlOut, wlErr strings.Builder
	if code := run([]string{"trace:" + path}, &wlOut, &wlErr); code != 0 {
		t.Fatalf("trace:<path> exit code %d, stderr:\n%s", code, wlErr.String())
	}
	if wlOut.String() != recOut.String() {
		t.Error("trace:<path> pseudo-workload output differs from recorded run")
	}
}

// TestRunRecordSampledBinary exercises the sampled + binary recording
// mode and its replay.
func TestRunRecordSampledBinary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig1.bin.trace")
	var out, errOut strings.Builder
	code := run([]string{"-record", path, "-record-sampled", "-record-binary",
		"-threads", "4", "-scale", "0.05", "figure1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("record exit code %d, stderr:\n%s", code, errOut.String())
	}
	var repOut, repErr strings.Builder
	if code := run([]string{"-replay", path}, &repOut, &repErr); code != 0 {
		t.Fatalf("replay exit code %d, stderr:\n%s", code, repErr.String())
	}
	if !strings.Contains(repOut.String(), "runtime") {
		t.Errorf("sampled replay missing runtime line:\n%s", repOut.String())
	}
}

// TestRunReRecordConvertsFraming: -record combined with a trace
// workload re-records the replayed run — here converting the text trace
// to binary — and both print the same report.
func TestRunReRecordConvertsFraming(t *testing.T) {
	dir := t.TempDir()
	text := filepath.Join(dir, "a.trace")
	var out1, err1 strings.Builder
	if code := run([]string{"-record", text, "-threads", "4", "-scale", "0.05", "figure1"}, &out1, &err1); code != 0 {
		t.Fatalf("record exit code %d, stderr:\n%s", code, err1.String())
	}
	bin := filepath.Join(dir, "a.bin.trace")
	var out2, err2 strings.Builder
	if code := run([]string{"-record", bin, "-record-binary", "trace:" + text}, &out2, &err2); code != 0 {
		t.Fatalf("re-record exit code %d, stderr:\n%s", code, err2.String())
	}
	if fi, err := os.Stat(bin); err != nil || fi.Size() == 0 {
		t.Fatalf("converted trace not written: %v", err)
	}
	var out3, err3 strings.Builder
	if code := run([]string{"-replay", bin}, &out3, &err3); code != 0 {
		t.Fatalf("replay of converted trace: exit code %d, stderr:\n%s", code, err3.String())
	}
	if out1.String() != out2.String() || out2.String() != out3.String() {
		t.Error("record, re-record and converted-replay reports differ")
	}
}

func TestRunReplayRejectsMissingFile(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-replay", "/no/such/file.trace"}, &out, &errOut); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
}

func TestRunReplayExcludesWorkloadArgument(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-replay", "x.trace", "figure1"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}
