package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, errOut.String())
	}
	for _, want := range []string{"linear_regression", "streamcluster", "figure1"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunProfilesWorkload(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-threads", "4", "-scale", "0.2", "linear_regression"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, errOut.String())
	}
	for _, want := range []string{"runtime", "phases"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunRejectsUnknownWorkload(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"no_such_workload"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown workload") {
		t.Errorf("stderr missing diagnosis:\n%s", errOut.String())
	}
}

func TestRunRejectsMissingArgument(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestRunHelpExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Fatalf("-h exit code %d, want 0", code)
	}
	if !strings.Contains(errOut.String(), "-threads") {
		t.Errorf("usage text missing flags:\n%s", errOut.String())
	}
}
