package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, errOut.String())
	}
	for _, want := range []string{"linear_regression", "streamcluster", "figure1", "trace:<path>"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunProfilesWorkload(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-threads", "4", "-scale", "0.2", "linear_regression"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, errOut.String())
	}
	for _, want := range []string{"runtime", "phases"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunSchedFlag: an invalid -sched is diagnosed before any work,
// and the calendar scheduler prints the byte-identical report the heap
// prints — the CLI edge of the cross-scheduler equivalence guarantee.
func TestRunSchedFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-sched", "lifo", "figure1"}, &out, &errOut); code != 2 {
		t.Fatalf("-sched lifo: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown scheduler") {
		t.Errorf("stderr missing scheduler diagnosis:\n%s", errOut.String())
	}

	args := []string{"-threads", "4", "-scale", "0.1", "figure1"}
	var heapOut, calOut, errs strings.Builder
	if code := run(append([]string{"-sched", "heap"}, args...), &heapOut, &errs); code != 0 {
		t.Fatalf("heap run: exit %d, stderr:\n%s", code, errs.String())
	}
	if code := run(append([]string{"-sched", "calendar"}, args...), &calOut, &errs); code != 0 {
		t.Fatalf("calendar run: exit %d, stderr:\n%s", code, errs.String())
	}
	if heapOut.String() != calOut.String() {
		t.Errorf("report differs across schedulers:\nheap:\n%s\ncalendar:\n%s",
			heapOut.String(), calOut.String())
	}
}

func TestRunRejectsUnknownWorkload(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"no_such_workload"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown workload") {
		t.Errorf("stderr missing diagnosis:\n%s", errOut.String())
	}
}

func TestRunRejectsMissingArgument(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestRunHelpExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Fatalf("-h exit code %d, want 0", code)
	}
	for _, want := range []string{"-threads", "-record", "-replay"} {
		if !strings.Contains(errOut.String(), want) {
			t.Errorf("usage text missing %q:\n%s", want, errOut.String())
		}
	}
}

// TestRunRecordReplayRoundTrip drives the full CLI surface: -record
// writes a trace while printing the report, -replay (and the
// trace:<path> pseudo-workload spelling) reproduce that report byte for
// byte.
func TestRunRecordReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig1.trace")
	var recOut, recErr strings.Builder
	code := run([]string{"-record", path, "-threads", "4", "-scale", "0.05", "figure1"}, &recOut, &recErr)
	if code != 0 {
		t.Fatalf("record exit code %d, stderr:\n%s", code, recErr.String())
	}
	if !strings.Contains(recErr.String(), "wrote trace") {
		t.Errorf("stderr missing trace confirmation:\n%s", recErr.String())
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file not written: %v", err)
	}

	var repOut, repErr strings.Builder
	if code := run([]string{"-replay", path}, &repOut, &repErr); code != 0 {
		t.Fatalf("replay exit code %d, stderr:\n%s", code, repErr.String())
	}
	if repOut.String() != recOut.String() {
		t.Errorf("-replay output differs from recorded run\n--- recorded ---\n%s\n--- replayed ---\n%s",
			recOut.String(), repOut.String())
	}

	var wlOut, wlErr strings.Builder
	if code := run([]string{"trace:" + path}, &wlOut, &wlErr); code != 0 {
		t.Fatalf("trace:<path> exit code %d, stderr:\n%s", code, wlErr.String())
	}
	if wlOut.String() != recOut.String() {
		t.Error("trace:<path> pseudo-workload output differs from recorded run")
	}
}

// TestRunRecordSampledBinary exercises the sampled + binary recording
// mode and its replay.
func TestRunRecordSampledBinary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig1.bin.trace")
	var out, errOut strings.Builder
	code := run([]string{"-record", path, "-record-sampled", "-record-binary",
		"-threads", "4", "-scale", "0.05", "figure1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("record exit code %d, stderr:\n%s", code, errOut.String())
	}
	var repOut, repErr strings.Builder
	if code := run([]string{"-replay", path}, &repOut, &repErr); code != 0 {
		t.Fatalf("replay exit code %d, stderr:\n%s", code, repErr.String())
	}
	if !strings.Contains(repOut.String(), "runtime") {
		t.Errorf("sampled replay missing runtime line:\n%s", repOut.String())
	}
}

// TestRunReRecordConvertsFraming: -record combined with a trace
// workload re-records the replayed run — here converting the text trace
// to binary — and both print the same report.
func TestRunReRecordConvertsFraming(t *testing.T) {
	dir := t.TempDir()
	text := filepath.Join(dir, "a.trace")
	var out1, err1 strings.Builder
	if code := run([]string{"-record", text, "-threads", "4", "-scale", "0.05", "figure1"}, &out1, &err1); code != 0 {
		t.Fatalf("record exit code %d, stderr:\n%s", code, err1.String())
	}
	bin := filepath.Join(dir, "a.bin.trace")
	var out2, err2 strings.Builder
	if code := run([]string{"-record", bin, "-record-binary", "trace:" + text}, &out2, &err2); code != 0 {
		t.Fatalf("re-record exit code %d, stderr:\n%s", code, err2.String())
	}
	if fi, err := os.Stat(bin); err != nil || fi.Size() == 0 {
		t.Fatalf("converted trace not written: %v", err)
	}
	var out3, err3 strings.Builder
	if code := run([]string{"-replay", bin}, &out3, &err3); code != 0 {
		t.Fatalf("replay of converted trace: exit code %d, stderr:\n%s", code, err3.String())
	}
	if out1.String() != out2.String() || out2.String() != out3.String() {
		t.Error("record, re-record and converted-replay reports differ")
	}
}

// TestRunMachineNoteRoundTrip pins the recorded-machine contract: a
// trace recorded under a non-default preset carries it in its metadata,
// a bare -replay simulates that recorded machine (byte-identical to the
// recorded run and to an explicit -machine spelling), and -machine
// overrides the note. 32 threads so the hot data spans multiple lines
// under both 64- and 128-byte geometry — the override visibly changes
// the report.
func TestRunMachineNoteRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "l128.trace")
	var recOut, recErr strings.Builder
	code := run([]string{"-machine", "line128", "-record", path, "-record-binary",
		"-threads", "32", "-scale", "0.05", "figure1"}, &recOut, &recErr)
	if code != 0 {
		t.Fatalf("record exit code %d, stderr:\n%s", code, recErr.String())
	}

	var noted, explicit, overridden strings.Builder
	var errOut strings.Builder
	if code := run([]string{"-replay", path}, &noted, &errOut); code != 0 {
		t.Fatalf("bare replay exit code %d, stderr:\n%s", code, errOut.String())
	}
	if noted.String() != recOut.String() {
		t.Errorf("bare replay did not honor the recorded machine note\n--- recorded ---\n%s\n--- replayed ---\n%s",
			recOut.String(), noted.String())
	}
	if code := run([]string{"-machine", "line128", "-replay", path}, &explicit, &errOut); code != 0 {
		t.Fatalf("explicit replay exit code %d, stderr:\n%s", code, errOut.String())
	}
	if explicit.String() != noted.String() {
		t.Error("explicit -machine line128 replay differs from the note-driven replay")
	}
	if code := run([]string{"-machine", "opteron48", "-replay", path}, &overridden, &errOut); code != 0 {
		t.Fatalf("override replay exit code %d, stderr:\n%s", code, errOut.String())
	}
	if overridden.String() == noted.String() {
		t.Error("-machine opteron48 override printed the line128 report; the flag did not override the note")
	}
}

func TestRunRejectsUnknownMachinePreset(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-machine", "cray1", "figure1"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "opteron48") {
		t.Errorf("error does not list available presets:\n%s", errOut.String())
	}
}

func TestRunReplayRejectsMissingFile(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-replay", "/no/such/file.trace"}, &out, &errOut); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
}

func TestRunReplayExcludesWorkloadArgument(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-replay", "x.trace", "figure1"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

// perfFixture is the checked-in perf script dump the import tests share
// with the importer package.
const perfFixture = "../../internal/trace/import/testdata/perf-mem.script"

// TestRunImportPerf: -import-perf converts a perf script dump into a
// native trace, -replay profiles it, and the imported trace replays
// byte-identically across invocations and schedulers (the acceptance
// bar for real-PMU imports).
func TestRunImportPerf(t *testing.T) {
	path := filepath.Join(t.TempDir(), "imported.trace")
	var out, errOut strings.Builder
	code := run([]string{"-import-perf", perfFixture, "-record", path, "-record-binary"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("import exit code %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "imported 114 perf script samples") {
		t.Errorf("stderr missing import summary:\n%s", errOut.String())
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("imported trace not written: %v", err)
	}

	var rep1, rep2, repCal, errs strings.Builder
	if code := run([]string{"-replay", path}, &rep1, &errs); code != 0 {
		t.Fatalf("replay exit code %d, stderr:\n%s", code, errs.String())
	}
	if !strings.Contains(rep1.String(), "fs_app") {
		t.Errorf("report does not name the imported program:\n%s", rep1.String())
	}
	if code := run([]string{"-replay", path}, &rep2, &errs); code != 0 {
		t.Fatalf("second replay exit code %d", code)
	}
	if rep1.String() != rep2.String() {
		t.Error("imported trace replays non-deterministically")
	}
	if code := run([]string{"-sched", "calendar", "-replay", path}, &repCal, &errs); code != 0 {
		t.Fatalf("calendar replay exit code %d", code)
	}
	if rep1.String() != repCal.String() {
		t.Error("imported trace replay differs across schedulers")
	}
}

// TestRunImportThenReplayInOneInvocation: -import-perf plus -replay on
// the output path converts and immediately profiles.
func TestRunImportThenReplayInOneInvocation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "imported.trace")
	var out, errOut strings.Builder
	code := run([]string{"-import-perf", perfFixture, "-record", path, "-replay", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, errOut.String())
	}
	for _, want := range []string{"runtime", "phases"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("combined import+replay output missing %q:\n%s", want, out.String())
		}
	}

	// Separate invocations must print the same report bytes.
	var rep strings.Builder
	if code := run([]string{"-replay", path}, &rep, &errOut); code != 0 {
		t.Fatalf("replay exit code %d", code)
	}
	if rep.String() != out.String() {
		t.Error("combined import+replay differs from separate replay")
	}
}

// TestRunImportIBS: the IBS CSV importer through the CLI, with the
// default output path derived from the input.
func TestRunImportIBS(t *testing.T) {
	dir := t.TempDir()
	src, err := os.ReadFile("../../internal/trace/import/testdata/ibs-samples.csv")
	if err != nil {
		t.Fatal(err)
	}
	in := filepath.Join(dir, "samples.csv")
	if err := os.WriteFile(in, src, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-import-ibs", in}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, errOut.String())
	}
	if fi, err := os.Stat(in + ".trace"); err != nil || fi.Size() == 0 {
		t.Fatalf("default-path trace not written: %v", err)
	}
	var rep strings.Builder
	if code := run([]string{"-replay", in + ".trace"}, &rep, &errOut); code != 0 {
		t.Fatalf("replay exit code %d, stderr:\n%s", code, errOut.String())
	}
}

// TestRunImportFlagValidation: the import flags reject contradictory
// usage and bad inputs with exit code 2/1 and a diagnosis.
func TestRunImportFlagValidation(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-import-perf", "a", "-import-ibs", "b"}, &out, &errOut); code != 2 {
		t.Errorf("both import flags: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "mutually exclusive") {
		t.Errorf("stderr missing exclusivity diagnosis:\n%s", errOut.String())
	}
	errOut.Reset()
	if code := run([]string{"-import-perf", perfFixture, "figure1"}, &out, &errOut); code != 2 {
		t.Errorf("import with workload arg: exit %d, want 2", code)
	}
	errOut.Reset()
	if code := run([]string{"-import-perf", filepath.Join(t.TempDir(), "nope")}, &out, &errOut); code != 1 {
		t.Errorf("missing input: exit %d, want 1", code)
	}
	errOut.Reset()
	empty := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	out2 := filepath.Join(t.TempDir(), "out.trace")
	if code := run([]string{"-import-perf", empty, "-record", out2}, &out, &errOut); code != 1 {
		t.Errorf("empty input: exit %d, want 1", code)
	}
	if _, err := os.Stat(out2); !os.IsNotExist(err) {
		t.Error("failed import left a trace file behind")
	}
}

// TestRunStreamReplayGoldens pins the streamed replay of the two
// checked-in fixtures — the hand-written sample trace and the imported
// perf mem trace — against golden reports: -index rewrites each into the
// seekable v3 framing, and -replay-stream must print bytes identical to
// both -replay and the golden. A diff here means the out-of-core path
// (or the engine schedule it relies on) changed observable behavior.
func TestRunStreamReplayGoldens(t *testing.T) {
	cases := []struct {
		name, fixture, golden string
	}{
		{"sample", "../../examples/tracereplay/sample.trace", "testdata/sample-replay.golden"},
		{"perf-mem", "../../internal/trace/import/testdata/perf-mem.golden.trace", "testdata/perf-mem-replay.golden"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			indexed := filepath.Join(t.TempDir(), tc.name+"-v3.trace")
			var out, errOut strings.Builder
			if code := run([]string{"-index", tc.fixture, "-record", indexed}, &out, &errOut); code != 0 {
				t.Fatalf("-index exit %d, stderr:\n%s", code, errOut.String())
			}
			var full, stream, errs strings.Builder
			if code := run([]string{"-replay", indexed}, &full, &errs); code != 0 {
				t.Fatalf("-replay exit %d, stderr:\n%s", code, errs.String())
			}
			if code := run([]string{"-replay-stream", indexed}, &stream, &errs); code != 0 {
				t.Fatalf("-replay-stream exit %d, stderr:\n%s", code, errs.String())
			}
			if stream.String() != full.String() {
				t.Errorf("streamed replay differs from full replay\n--- full ---\n%s\n--- stream ---\n%s",
					full.String(), stream.String())
			}
			golden, err := os.ReadFile(tc.golden)
			if err != nil {
				t.Fatal(err)
			}
			if stream.String() != string(golden) {
				t.Errorf("streamed replay differs from golden %s\n--- golden ---\n%s\n--- stream ---\n%s",
					tc.golden, golden, stream.String())
			}
		})
	}
}

// TestRunMetricsFlagsOffReportPath: the observability flags must not
// perturb the report — stdout is byte-identical with metrics serving,
// span logging and Chrome tracing all enabled.
func TestRunMetricsFlagsOffReportPath(t *testing.T) {
	var plain, plainErr strings.Builder
	if code := run([]string{"-threads", "4", "-scale", "0.2", "figure1"}, &plain, &plainErr); code != 0 {
		t.Fatalf("plain run exit code %d, stderr:\n%s", code, plainErr.String())
	}
	dir := t.TempDir()
	var obs, obsErr strings.Builder
	args := []string{
		"-metrics-addr", "127.0.0.1:0",
		"-span-log", filepath.Join(dir, "spans.jsonl"),
		"-chrome-trace", filepath.Join(dir, "trace.json"),
		"-threads", "4", "-scale", "0.2", "figure1",
	}
	if code := run(args, &obs, &obsErr); code != 0 {
		t.Fatalf("instrumented run exit code %d, stderr:\n%s", code, obsErr.String())
	}
	if plain.String() != obs.String() {
		t.Error("report changed under -metrics-addr/-span-log/-chrome-trace")
	}
	if !strings.Contains(obsErr.String(), "serving metrics and pprof") {
		t.Errorf("stderr missing metrics endpoint line:\n%s", obsErr.String())
	}
	chrome, err := os.ReadFile(filepath.Join(dir, "trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(chrome) == 0 || chrome[0] != '[' || !strings.HasSuffix(strings.TrimSpace(string(chrome)), "]") {
		t.Errorf("chrome trace is not a finalized JSON array:\n%.200s", chrome)
	}
}

// TestRunTraceInfoPrintsImportNotes: -trace-info surfaces the skip
// tally the importer embedded as #note records.
func TestRunTraceInfoPrintsImportNotes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "imported.trace")
	var out, errOut strings.Builder
	if code := run([]string{"-import-perf", perfFixture, "-record", path}, &out, &errOut); code != 0 {
		t.Fatalf("import exit code %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "2 skipped: 0 parse, 1 non-mem, 1 kernel") {
		t.Errorf("import summary missing skip breakdown:\n%s", errOut.String())
	}
	var info, infoErr strings.Builder
	if code := run([]string{"-trace-info", path}, &info, &infoErr); code != 0 {
		t.Fatalf("trace-info exit code %d, stderr:\n%s", code, infoErr.String())
	}
	for _, want := range []string{
		"note:     import.source=perf-script",
		"note:     import.skipped_nonmem=1",
		"note:     import.skipped_kernel=1",
	} {
		if !strings.Contains(info.String(), want) {
			t.Errorf("trace-info missing %q:\n%s", want, info.String())
		}
	}
}
