package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/sweep"
	"repro/internal/trace"
	traceimport "repro/internal/trace/import"
)

func TestRunSingleExperiment(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-experiment", "fig1", "-scale", "0.2", "-threads", "4"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "reality/expectation") {
		t.Errorf("fig1 output missing header:\n%s", out.String())
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-experiment", "fig99"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Errorf("stderr missing diagnosis:\n%s", errOut.String())
	}
}

func TestRunHelpExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Fatalf("-h exit code %d, want 0", code)
	}
	if !strings.Contains(errOut.String(), "-experiment") {
		t.Errorf("usage text missing flags:\n%s", errOut.String())
	}
}

// TestRunRejectsBadTraceApp: a missing or corrupt trace:<path> app must
// produce a one-line diagnostic and exit 1, not a worker-goroutine
// panic.
func TestRunRejectsBadTraceApp(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-experiment", "fig5", "-app", "trace:/no/such.trace"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("missing trace: exit code %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "no such file") {
		t.Errorf("stderr missing diagnosis:\n%s", errOut.String())
	}

	bad := filepath.Join(t.TempDir(), "bad.trace")
	if err := os.WriteFile(bad, []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	errOut.Reset()
	if code := run([]string{"-experiment", "fig5", "-app", "trace:" + bad}, &out, &errOut); code != 1 {
		t.Fatalf("corrupt trace: exit code %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "unrecognized framing") {
		t.Errorf("stderr missing diagnosis:\n%s", errOut.String())
	}

	// Decodes cleanly but cannot be restored: still a diagnostic, not a
	// worker panic.
	overlap := filepath.Join(t.TempDir(), "overlap.trace")
	content := "#cheetah-trace v1\n#program 4 dup\n" +
		"#object 0x40000000 16 16 0 1 1 -\n#object 0x40000000 16 16 0 2 1 -\n" +
		"#phase 0 p w\n1 w 0x40000000 4 1 0 0\n"
	if err := os.WriteFile(overlap, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	errOut.Reset()
	if code := run([]string{"-experiment", "fig5", "-app", "trace:" + overlap}, &out, &errOut); code != 1 {
		t.Fatalf("unrestorable trace: exit code %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "occupied") {
		t.Errorf("stderr missing restore diagnosis:\n%s", errOut.String())
	}
}

// TestWriteFileAtomic: the trajectory write must go through a temp file
// plus rename so a crash mid-write can never truncate an existing file,
// must replace existing content, and must leave no temp files behind.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_harness.json")
	if err := writeFileAtomic(path, []byte("first\n")); err != nil {
		t.Fatalf("initial write: %v", err)
	}
	if err := writeFileAtomic(path, []byte("second\n")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second\n" {
		t.Errorf("content = %q, want %q", got, "second\n")
	}
	if fi, err := os.Stat(path); err != nil || fi.Mode().Perm() != 0o644 {
		t.Errorf("mode = %v (err %v), want 0644", fi.Mode(), err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want only the trajectory file: %v", len(entries), entries)
	}
	// Writing into a missing directory must fail without creating
	// anything.
	if err := writeFileAtomic(filepath.Join(dir, "no", "such", "dir.json"), []byte("x")); err == nil {
		t.Error("write into missing directory succeeded")
	}
}

func TestRunAllWritesBenchTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	path := filepath.Join(t.TempDir(), "BENCH_harness.json")
	var out, errOut strings.Builder
	code := run([]string{"-experiment", "all", "-scale", "0.1", "-threads", "4",
		"-bench-out", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, errOut.String())
	}
	for _, want := range []string{"Figure 1", "Figure 4", "Table 1", "Ablation"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("all-experiments output missing %q", want)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("bench trajectory not written: %v", err)
	}
	var entry harness.BenchEntry
	if err := json.Unmarshal(raw, &entry); err != nil {
		t.Fatalf("bench trajectory is not valid JSON: %v\n%s", err, raw)
	}
	if entry.Schema != harness.BenchSchema {
		t.Errorf("schema = %q, want %q", entry.Schema, harness.BenchSchema)
	}
	if entry.CellsRun == 0 || entry.WallSeconds <= 0 || entry.Workers == 0 {
		t.Errorf("entry missing run statistics: %+v", entry)
	}
	if len(entry.Metrics) == 0 {
		t.Error("entry has no metrics")
	}
	if entry.GitCommit == "" {
		t.Error("entry has no git commit stamp")
	}
	if entry.Timestamp == "" {
		t.Error("entry has no timestamp")
	} else if _, err := time.Parse(time.RFC3339, entry.Timestamp); err != nil {
		t.Errorf("timestamp %q is not RFC3339: %v", entry.Timestamp, err)
	}
}

// TestGitCommitStamp: inside this repo the stamp must be a hex commit
// hash, and it must agree with git itself.
func TestGitCommitStamp(t *testing.T) {
	got := gitCommit()
	if got == "unknown" {
		t.Skip("not in a git checkout")
	}
	if len(got) != 40 {
		t.Errorf("gitCommit() = %q, want a 40-hex-digit hash", got)
	}
	for _, r := range got {
		if !strings.ContainsRune("0123456789abcdef", r) {
			t.Errorf("gitCommit() = %q contains non-hex %q", got, r)
			break
		}
	}
}

// TestShardedFlagValidation: sharding flags only make sense for the
// full sweep, and the cache only with sharding; both misuses must be
// diagnosed, not silently ignored.
func TestShardedFlagValidation(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-experiment", "fig1", "-workers-procs", "2"}, &out, &errOut); code != 2 {
		t.Errorf("-workers-procs with fig1: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-experiment all") {
		t.Errorf("stderr missing diagnosis:\n%s", errOut.String())
	}
	errOut.Reset()
	if code := run([]string{"-experiment", "all", "-cache-dir", t.TempDir()}, &out, &errOut); code != 2 {
		t.Errorf("-cache-dir without sharding: exit %d, want 2", code)
	}
	errOut.Reset()
	if code := run([]string{"-experiment", "all", "-cell-timeout", "10s"}, &out, &errOut); code != 2 {
		t.Errorf("-cell-timeout without sharding: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-cell-timeout") {
		t.Errorf("stderr missing -cell-timeout diagnosis:\n%s", errOut.String())
	}
}

// TestSchedFlag: -sched validates its value up front and a calendar-
// scheduled experiment prints byte-identical output to the default
// heap-scheduled one (the CLI edge of the equivalence guarantee).
func TestSchedFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-sched", "fifo"}, &out, &errOut); code != 2 {
		t.Fatalf("-sched fifo: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown scheduler") {
		t.Errorf("stderr missing scheduler diagnosis:\n%s", errOut.String())
	}

	args := []string{"-experiment", "fig1", "-scale", "0.05", "-threads", "4"}
	var heapOut, calOut, errs strings.Builder
	if code := run(append([]string{"-sched", "heap"}, args...), &heapOut, &errs); code != 0 {
		t.Fatalf("heap fig1: exit %d, stderr:\n%s", code, errs.String())
	}
	if code := run(append([]string{"-sched", "calendar"}, args...), &calOut, &errs); code != 0 {
		t.Fatalf("calendar fig1: exit %d, stderr:\n%s", code, errs.String())
	}
	if heapOut.String() != calOut.String() {
		t.Errorf("fig1 output differs across schedulers:\nheap:\n%s\ncalendar:\n%s",
			heapOut.String(), calOut.String())
	}
}

// TestWorkerModeOnClosedStdin: `fsbench -worker` under `go test` reads
// EOF from stdin immediately; it must emit its hello frame and exit 0 —
// the behavior a coordinator relies on when it closes a worker's pipe.
func TestWorkerModeOnClosedStdin(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-worker"}, &out, &errOut); code != 0 {
		t.Fatalf("worker exit %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), sweep.ProtoVersion) {
		t.Errorf("worker stdout missing hello frame:\n%q", out.String())
	}
}

// TestShardedSweepCLI: the full CLI path — coordinator spawning real
// fsbench -worker subprocesses — must print byte-identical output to
// the serial CLI path. The packages under internal/ already test this
// exhaustively; this guards the flag wiring.
func TestShardedSweepCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a full sharded sweep")
	}
	if _, err := os.Stat(os.Args[0]); err != nil {
		t.Skip("test binary path unavailable")
	}
	// The worker subprocess must be fsbench itself, not the test
	// binary; build it once into a temp dir.
	exe := filepath.Join(t.TempDir(), "fsbench")
	if out, err := exec.Command("go", "build", "-o", exe, ".").CombinedOutput(); err != nil {
		t.Fatalf("building fsbench: %v\n%s", err, out)
	}
	args := []string{"-experiment", "all", "-scale", "0.04", "-threads", "4"}
	serial, err := exec.Command(exe, append(args, "-workers", "1")...).Output()
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	sharded, err := exec.Command(exe, append(args, "-workers-procs", "2")...).Output()
	if err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	if string(serial) != string(sharded) {
		t.Errorf("sharded CLI output diverges from serial:\nserial:\n%s\nsharded:\n%s", serial, sharded)
	}
}

// TestCacheMaxBytesFlagValidation: the eviction cap requires a cache
// directory and a non-negative value.
func TestCacheMaxBytesFlagValidation(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-experiment", "all", "-workers-procs", "2", "-cache-max-bytes", "1024"}, &out, &errOut); code != 2 {
		t.Errorf("-cache-max-bytes without -cache-dir: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-cache-dir") {
		t.Errorf("stderr missing diagnosis:\n%s", errOut.String())
	}
	errOut.Reset()
	if code := run([]string{"-experiment", "all", "-workers-procs", "2",
		"-cache-dir", t.TempDir(), "-cache-max-bytes", "-5"}, &out, &errOut); code != 2 {
		t.Errorf("negative -cache-max-bytes: exit %d, want 2", code)
	}
}

// TestImportedTraceSmoke is fsbench's imported-trace smoke workload: a
// real perf script fixture imports to a native trace, sweeps through
// the fig5 case study as a `trace:` pseudo-workload, and prints
// byte-identical output across repeated runs and schedulers.
func TestImportedTraceSmoke(t *testing.T) {
	src, err := os.Open("../../internal/trace/import/testdata/perf-mem.script")
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	path := filepath.Join(t.TempDir(), "imported.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := traceimport.ImportPerfScript(src, trace.NewBinaryEncoder(f), traceimport.Options{}); err != nil {
		t.Fatalf("import: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	args := []string{"-experiment", "fig5", "-app", "trace:" + path}
	var first, second, calendar, errOut strings.Builder
	if code := run(args, &first, &errOut); code != 0 {
		t.Fatalf("fig5 on imported trace: exit %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(first.String(), "fs_app") {
		t.Errorf("fig5 report does not name the imported program:\n%s", first.String())
	}
	if code := run(args, &second, &errOut); code != 0 {
		t.Fatalf("second run: exit %d", code)
	}
	if first.String() != second.String() {
		t.Error("imported-trace fig5 output is not reproducible")
	}
	if code := run(append([]string{"-sched", "calendar"}, args...), &calendar, &errOut); code != 0 {
		t.Fatalf("calendar run: exit %d", code)
	}
	if first.String() != calendar.String() {
		t.Error("imported-trace fig5 output differs across schedulers")
	}
}

// TestRunMetricsFlagsOffReportPath: sweep output must be byte-identical
// with the observability surface fully enabled — the CLI edge of the
// "instrumentation off the report path" guarantee.
func TestRunMetricsFlagsOffReportPath(t *testing.T) {
	// -workers 2 pins a private runner: the shared default runner
	// memoizes cells forever, and a memoized hit executes nothing — so
	// the instrumented run would have no cell spans to log.
	var plain, plainErr strings.Builder
	if code := run([]string{"-experiment", "fig1", "-scale", "0.2", "-threads", "4", "-workers", "2"}, &plain, &plainErr); code != 0 {
		t.Fatalf("plain run exit code %d, stderr:\n%s", code, plainErr.String())
	}
	dir := t.TempDir()
	var obs, obsErr strings.Builder
	args := []string{
		"-metrics-addr", "127.0.0.1:0",
		"-span-log", filepath.Join(dir, "spans.jsonl"),
		"-chrome-trace", filepath.Join(dir, "trace.json"),
		"-experiment", "fig1", "-scale", "0.2", "-threads", "4", "-workers", "2",
	}
	if code := run(args, &obs, &obsErr); code != 0 {
		t.Fatalf("instrumented run exit code %d, stderr:\n%s", code, obsErr.String())
	}
	if plain.String() != obs.String() {
		t.Error("fig1 output changed under -metrics-addr/-span-log/-chrome-trace")
	}
	spans, err := os.ReadFile(filepath.Join(dir, "spans.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(spans), `"cat":"harness"`) || !strings.Contains(string(spans), `"workload":"figure1"`) {
		t.Errorf("span log missing harness cell spans:\n%.300s", spans)
	}
}

// TestRunProgressFlagRequiresSharding mirrors the other sharded-only
// flags: -progress without a sharded sweep is a usage error.
func TestRunProgressFlagRequiresSharding(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-experiment", "all", "-progress", "5s"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "-progress requires a sharded sweep") {
		t.Errorf("stderr missing diagnostic:\n%s", errOut.String())
	}
}
