package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
)

func TestRunSingleExperiment(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-experiment", "fig1", "-scale", "0.2", "-threads", "4"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "reality/expectation") {
		t.Errorf("fig1 output missing header:\n%s", out.String())
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-experiment", "fig99"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Errorf("stderr missing diagnosis:\n%s", errOut.String())
	}
}

func TestRunHelpExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Fatalf("-h exit code %d, want 0", code)
	}
	if !strings.Contains(errOut.String(), "-experiment") {
		t.Errorf("usage text missing flags:\n%s", errOut.String())
	}
}

func TestRunAllWritesBenchTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	path := filepath.Join(t.TempDir(), "BENCH_harness.json")
	var out, errOut strings.Builder
	code := run([]string{"-experiment", "all", "-scale", "0.1", "-threads", "4",
		"-bench-out", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, errOut.String())
	}
	for _, want := range []string{"Figure 1", "Figure 4", "Table 1", "Ablation"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("all-experiments output missing %q", want)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("bench trajectory not written: %v", err)
	}
	var entry harness.BenchEntry
	if err := json.Unmarshal(raw, &entry); err != nil {
		t.Fatalf("bench trajectory is not valid JSON: %v\n%s", err, raw)
	}
	if entry.Schema != harness.BenchSchema {
		t.Errorf("schema = %q, want %q", entry.Schema, harness.BenchSchema)
	}
	if entry.CellsRun == 0 || entry.WallSeconds <= 0 || entry.Workers == 0 {
		t.Errorf("entry missing run statistics: %+v", entry)
	}
	if len(entry.Metrics) == 0 {
		t.Error("entry has no metrics")
	}
}
