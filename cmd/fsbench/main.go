// Command fsbench regenerates the tables and figures of the paper's
// evaluation (§4).
//
// Usage:
//
//	fsbench -experiment fig1|fig4|fig5|fig7|table1|compare|ablation|all
//	        [-scale 1.0] [-threads 16] [-app linear_regression]
//
// Each experiment prints the same rows or series the paper reports;
// EXPERIMENTS.md records the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	experiment := flag.String("experiment", "all",
		"which experiment to run: fig1, fig4, fig5, fig7, table1, compare, ablation, all")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	threads := flag.Int("threads", 16, "worker threads per parallel phase")
	app := flag.String("app", "linear_regression", "application for fig5 (case study report)")
	flag.Parse()

	cfg := harness.Config{Scale: *scale, Threads: *threads}

	run := func(name string, fn func()) {
		switch *experiment {
		case name, "all":
			fn()
			fmt.Println()
		}
	}

	any := false
	for _, known := range []string{"fig1", "fig4", "fig5", "fig7", "table1", "compare", "ablation", "all"} {
		if *experiment == known {
			any = true
		}
	}
	if !any {
		fmt.Fprintf(os.Stderr, "fsbench: unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}

	run("fig1", func() {
		fmt.Print(harness.FormatFigure1(harness.Figure1(cfg)))
	})
	run("fig4", func() {
		fmt.Print(harness.FormatFigure4(harness.Figure4(cfg)))
	})
	run("fig5", func() {
		_, text := harness.Figure5(*app, cfg)
		fmt.Printf("Figure 5: Cheetah report for %s\n\n%s", *app, text)
	})
	run("fig7", func() {
		fmt.Print(harness.FormatFigure7(harness.Figure7(cfg)))
	})
	run("table1", func() {
		fmt.Print(harness.FormatTable1(harness.Table1(cfg)))
	})
	run("compare", func() {
		fmt.Print(harness.FormatCompare(harness.Compare(cfg)))
	})
	run("ablation", func() {
		fmt.Print(harness.FormatPeriodAblation(harness.PeriodAblation(cfg)))
		fmt.Println()
		fmt.Print(harness.FormatRuleAblation(harness.RuleAblation(cfg)))
	})
}
