// Command fsbench regenerates the tables and figures of the paper's
// evaluation (§4).
//
// Usage:
//
//	fsbench -experiment fig1|fig4|fig5|fig7|table1|compare|ablation|all
//	        [-scale 1.0] [-threads 16] [-workers 0] [-app linear_regression]
//	        [-bench-out BENCH_harness.json] [-replay-mode auto|full|stream]
//	        [-workers-procs 0] [-cache-dir DIR] [-cache-max-bytes N] [-listen ADDR]
//	fsbench -replay-shards N -app trace:PATH [-workers 0] [-workers-procs 0]
//	fsbench -worker [-connect ADDR]
//	fsbench ... [-metrics-addr 127.0.0.1:9137] [-span-log spans.jsonl]
//	        [-chrome-trace trace.json] [-progress 10s]
//
// -metrics-addr serves live Prometheus/JSON metrics and pprof while the
// sweep runs; -span-log / -chrome-trace record the sweep cell lifecycle
// as structured spans; -progress prints a periodic done/pending line
// for sharded sweeps. All are opt-in and off the report path: output is
// byte-identical with or without them.
//
// Each experiment prints the same rows or series the paper reports.
// Experiment cells run concurrently on a -workers pool (0 = GOMAXPROCS, 1 = serial);
// results are identical at any worker count. With -experiment all,
// -bench-out additionally writes a machine-readable trajectory entry
// (headline metrics, wall-clock, cells executed, git commit, timestamp)
// so performance and result drift can be tracked across revisions; the
// file is written atomically (temp file + rename), so an interrupted
// run cannot truncate it.
//
// Beyond the in-process pool, -experiment all shards across OS
// processes: -workers-procs N spawns N worker subprocesses (this binary
// re-executed with -worker), -listen ADDR additionally accepts remote
// workers started with `fsbench -worker -connect ADDR` on other
// machines, and -cache-dir keeps finished cells on disk so re-sweeps
// and crashed-sweep resumes skip completed work (-cache-max-bytes caps
// the directory, evicting least-recently-used entries from previous
// sweeps). Workers that die mid-sweep are replaced up to a bound, so a
// multi-proc sweep keeps its parallelism through crashes. The merged
// sharded report is byte-identical to the serial run — CI cmps the two.
//
// Recorded and imported memory-access traces sweep like any workload:
// pass `trace:<path>` wherever an application name is accepted, e.g.
// `fsbench -experiment fig5 -app trace:run.trace`. Cells of trace
// workloads are identified by the trace file's content hash, so cached
// results never go stale when the file is rewritten. -replay-mode
// selects how trace cells load their file: auto (default) streams
// indexed traces phase-by-phase under bounded memory and fully decodes
// the rest, full always loads the whole trace, stream requires an
// index; reports are byte-identical in every mode, so the mode is not
// part of a cell's cache identity. -replay-shards N splits one indexed
// trace into N contiguous phase ranges and replays them as independent
// `trace:<path>@lo-hi` cells — locally on the -workers pool, or across
// worker processes with -workers-procs/-listen — printing the merged
// per-shard report, byte-identical at any worker count.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/atomicfile"
	engine "repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fsbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	experiment := fs.String("experiment", "all",
		"which experiment to run: fig1, fig4, fig5, fig7, table1, compare, ablation, all")
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	threads := fs.Int("threads", 16, "worker threads per parallel phase")
	workers := fs.Int("workers", 0, "max concurrent experiment cells (0 = GOMAXPROCS, 1 = serial)")
	sched := fs.String("sched", "",
		"engine thread scheduler: sorted (default), heap or calendar; results are byte-identical either way")
	machineName := fs.String("machine", "",
		"machine-model preset every cell simulates (topology, line size, protocol); empty = opteron48. Unlike -sched this changes results")
	app := fs.String("app", "linear_regression", "application for fig5 (case study report)")
	benchOut := fs.String("bench-out", "",
		"path for the machine-readable bench trajectory entry (with -experiment all)")
	benchGate := fs.String("bench-gate", "",
		"baseline BENCH_harness.json to gate against: exit non-zero when this sweep's accesses_per_sec regresses more than 20% below it (with -experiment all)")
	worker := fs.Bool("worker", false,
		"run as a sweep worker serving cells on stdin/stdout (or via -connect)")
	connect := fs.String("connect", "",
		"with -worker: dial a coordinator at host:port instead of using stdin/stdout")
	workersProcs := fs.Int("workers-procs", 0,
		"shard -experiment all across this many worker subprocesses (0 = in-process)")
	listenAddr := fs.String("listen", "",
		"with -experiment all: accept remote TCP sweep workers on this address")
	cacheDir := fs.String("cache-dir", "",
		"on-disk result cache for sharded sweeps; cached cells are never re-run")
	cacheMaxBytes := fs.Int64("cache-max-bytes", 0,
		"evict least-recently-used -cache-dir entries over this size (0 = unbounded; the running sweep's entries are never evicted)")
	cellTimeout := fs.Duration("cell-timeout", 0,
		"with a sharded sweep: requeue a cell whose worker sends no reply within this duration (0 = wait forever)")
	replayMode := fs.String("replay-mode", workload.ReplayAuto,
		"trace replay mode: auto (stream indexed traces), full, or stream; reports are byte-identical in every mode")
	replayShards := fs.Int("replay-shards", 0,
		"with -app trace:PATH: split the indexed trace into this many phase-range shards and print the merged per-shard report")
	metricsAddr := fs.String("metrics-addr", "",
		"serve live metrics (Prometheus at /metrics, JSON at /metrics.json) and pprof on this address (e.g. 127.0.0.1:9137, or :0)")
	spanLog := fs.String("span-log", "", "append structured span/event records (JSONL) to this file")
	chromeTrace := fs.String("chrome-trace", "", "write a Chrome trace-event file (load in chrome://tracing) to this path")
	progressEvery := fs.Duration("progress", 0,
		"with a sharded sweep: print a progress line (done/pending/retries, cache hit rate) at this interval (0 = off)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	// A sweep is a batch job: relax the GC target so the simulator spends
	// its cycles simulating instead of collecting (worth a few percent of
	// end-to-end wall time). Peak memory stays modest at paper scale, and
	// every mode — coordinator, worker, serial — benefits alike.
	debug.SetGCPercent(400)

	// The replay mode is process-wide: it must be set before any trace
	// cell builds, including in worker mode (the coordinator forwards the
	// flag to spawned workers so every process loads traces the same way).
	if err := workload.SetTraceReplayMode(*replayMode); err != nil {
		fmt.Fprintf(stderr, "fsbench: %v\n", err)
		return 2
	}

	// Worker mode: serve cells until the coordinator closes the stream.
	// Nothing else may write to stdout — it is the wire.
	if *worker {
		var err error
		if *connect != "" {
			err = sweep.ServeTCP(*connect)
		} else {
			err = sweep.Serve(os.Stdin, stdout)
		}
		if err != nil {
			fmt.Fprintf(stderr, "fsbench: worker: %v\n", err)
			return 1
		}
		return 0
	}

	// Trace pseudo-workloads are validated up front — the full pipeline,
	// not just decoding: workload Build cannot return errors (it panics,
	// inside a harness worker), so a bad path, corrupt file or
	// unrestorable layout is diagnosed here instead. ValidateTraceName
	// rehearses the same load path Build will take under the selected
	// replay mode (streamed or full).
	if workload.IsTraceName(*app) {
		if err := workload.ValidateTraceName(*app); err != nil {
			fmt.Fprintf(stderr, "fsbench: %v\n", err)
			return 1
		}
	}

	if !engine.ValidScheduler(*sched) {
		fmt.Fprintf(stderr, "fsbench: unknown scheduler %q; available: %s\n",
			*sched, strings.Join(engine.SchedulerNames(), ", "))
		return 2
	}
	if _, ok := machine.Preset(*machineName); !ok {
		fmt.Fprintf(stderr, "fsbench: unknown machine preset %q; available: %s\n",
			*machineName, strings.Join(machine.Names(), ", "))
		return 2
	}

	// Observability is opt-in and strictly off the report path: sweep
	// output is byte-identical with or without these flags (CI cmps it).
	obsCleanup, obsAddr, err := obs.Setup(*metricsAddr, *spanLog, *chromeTrace)
	if err != nil {
		fmt.Fprintf(stderr, "fsbench: %v\n", err)
		return 1
	}
	defer obsCleanup()
	if obsAddr != "" {
		fmt.Fprintf(stderr, "fsbench: serving metrics and pprof on http://%s\n", obsAddr)
	}

	cfg := harness.Config{Scale: *scale, Threads: *threads, Workers: *workers, Sched: *sched, Machine: *machineName}
	sharded := *workersProcs > 0 || *listenAddr != ""
	if sharded && *experiment != "all" && *replayShards == 0 {
		fmt.Fprintf(stderr, "fsbench: -workers-procs/-listen shard the full sweep; use -experiment all or -replay-shards\n")
		return 2
	}
	if *cacheDir != "" && !sharded {
		fmt.Fprintf(stderr, "fsbench: -cache-dir requires a sharded sweep (-workers-procs or -listen)\n")
		return 2
	}
	if *cacheMaxBytes != 0 && *cacheDir == "" {
		fmt.Fprintf(stderr, "fsbench: -cache-max-bytes requires -cache-dir\n")
		return 2
	}
	if *cacheMaxBytes < 0 {
		fmt.Fprintf(stderr, "fsbench: -cache-max-bytes must be >= 0\n")
		return 2
	}
	if *cellTimeout != 0 && !sharded {
		fmt.Fprintf(stderr, "fsbench: -cell-timeout requires a sharded sweep (-workers-procs or -listen)\n")
		return 2
	}
	if *progressEvery != 0 && !sharded {
		fmt.Fprintf(stderr, "fsbench: -progress requires a sharded sweep (-workers-procs or -listen)\n")
		return 2
	}

	// Phase-sharded trace replay: split one indexed trace into phase
	// ranges, run them as independent cells (local goroutines or sweep
	// worker processes), print the merged per-shard report.
	if *replayShards != 0 {
		if *replayShards < 1 {
			fmt.Fprintf(stderr, "fsbench: -replay-shards must be >= 1\n")
			return 2
		}
		if !workload.IsTraceName(*app) {
			fmt.Fprintf(stderr, "fsbench: -replay-shards requires -app trace:<path>\n")
			return 2
		}
		return runShardedReplay(cfg, *app, *replayShards, *workers, *workersProcs,
			*listenAddr, *cacheDir, *cacheMaxBytes, *cellTimeout, *progressEvery, *replayMode, stdout, stderr)
	}

	switch *experiment {
	case "all":
		var (
			res      *harness.Results
			cellsRun int
			workersN int
			accesses uint64
		)
		start := time.Now()
		if sharded {
			stats, code := runSharded(cfg, *workersProcs, *listenAddr, *cacheDir, *cacheMaxBytes, *cellTimeout, *progressEvery, *replayMode, &res, stderr)
			if code != 0 {
				return code
			}
			cellsRun, workersN = stats.Executed, stats.Workers
			// Worker processes report per-cell access counts over the wire
			// (and the cache preserves them), so the throughput stamp is
			// real even when no simulation ran in this process.
			accesses = stats.Accesses
			fmt.Fprintf(stderr, "fsbench: sweep of %d cells: %d cached, %d executed on %d workers, %d retries, %d respawns\n",
				stats.Cells, stats.Cached, stats.Executed, stats.Workers, stats.Retries, stats.Respawns)
		} else {
			r := harness.NewRunner(cfg.Workers)
			res = harness.RunAllWith(r, cfg)
			cellsRun = r.CellsRun()
			accesses = r.Accesses()
			workersN = cfg.Workers
			if workersN <= 0 {
				workersN = runtime.GOMAXPROCS(0)
			}
		}
		elapsed := time.Since(start)
		fmt.Fprint(stdout, res.Format())
		if *benchOut != "" || *benchGate != "" {
			schedName := *sched
			if schedName == "" {
				schedName = engine.SchedSorted
			}
			presetName := *machineName
			if presetName == "" {
				presetName = machine.DefaultName
			}
			entry := harness.BenchEntry{
				Schema:      harness.BenchSchema,
				GitCommit:   gitCommit(),
				Timestamp:   time.Now().UTC().Format(time.RFC3339),
				Workers:     workersN,
				CellsRun:    cellsRun,
				WallSeconds: elapsed.Seconds(),
				Scale:       *scale,
				Threads:     *threads,
				Sched:       schedName,
				Machine:     presetName,
				TraceFormat: trace.BinaryVersion,
				ReplayMode:  *replayMode,
				// The per-cell access counts over the sweep's wall clock:
				// simulation throughput, not report content.
				Accesses:       accesses,
				AccessesPerSec: float64(accesses) / elapsed.Seconds(),
				Metrics:        res.Metrics(),
			}
			if *benchOut != "" {
				b, err := entry.MarshalIndent()
				if err == nil {
					err = writeFileAtomic(*benchOut, b)
				}
				if err != nil {
					fmt.Fprintf(stderr, "fsbench: writing %s: %v\n", *benchOut, err)
					return 1
				}
				fmt.Fprintf(stdout, "\nwrote bench trajectory entry to %s (%d cells, %.1fs)\n",
					*benchOut, entry.CellsRun, entry.WallSeconds)
			}
			if *benchGate != "" {
				baseline, err := harness.LoadBenchBaseline(*benchGate)
				if err != nil {
					fmt.Fprintf(stderr, "fsbench: bench gate: %v\n", err)
					return 1
				}
				verdict := harness.CheckBenchGate(baseline, entry, harness.DefaultMaxRegression)
				fmt.Fprintf(stderr, "fsbench: bench gate: %s\n", verdict.Reason)
				if !verdict.OK {
					return 1
				}
			}
		}
	case "fig1":
		fmt.Fprint(stdout, harness.FormatFigure1(harness.Figure1(cfg)))
	case "fig4":
		fmt.Fprint(stdout, harness.FormatFigure4(harness.Figure4(cfg)))
	case "fig5":
		_, text := harness.Figure5(*app, cfg)
		fmt.Fprintf(stdout, "Figure 5: Cheetah report for %s\n\n%s", *app, text)
	case "fig7":
		fmt.Fprint(stdout, harness.FormatFigure7(harness.Figure7(cfg)))
	case "table1":
		fmt.Fprint(stdout, harness.FormatTable1(harness.Table1(cfg)))
	case "compare":
		fmt.Fprint(stdout, harness.FormatCompare(harness.Compare(cfg)))
	case "ablation":
		fmt.Fprint(stdout, harness.FormatPeriodAblation(harness.PeriodAblation(cfg)))
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, harness.FormatRuleAblation(harness.RuleAblation(cfg)))
	default:
		fmt.Fprintf(stderr, "fsbench: unknown experiment %q\n", *experiment)
		fs.Usage()
		return 2
	}
	return 0
}

// sweepConfig assembles the multi-process coordinator configuration:
// procs spawned subprocess workers (this binary re-executed with
// -worker and the process-wide replay mode forwarded, so every worker
// loads traces the same way), plus any remote workers that dial
// listenAddr, with an optional on-disk result cache and per-cell
// timeout.
func sweepConfig(cfg harness.Config, procs int, listenAddr, cacheDir string, cacheMaxBytes int64, cellTimeout, progressEvery time.Duration, replayMode string, stderr io.Writer) (sweep.Config, error) {
	sc := sweep.Config{Harness: cfg, Procs: procs, CellTimeout: cellTimeout, Log: stderr, ProgressEvery: progressEvery}
	if procs > 0 {
		self, err := os.Executable()
		if err != nil {
			return sc, fmt.Errorf("resolving own binary for workers: %v", err)
		}
		sc.Spawn = func(int) (io.ReadWriteCloser, error) {
			return sweep.SpawnWorkerProc(self, []string{"-worker", "-replay-mode", replayMode}, nil, stderr)
		}
	}
	if listenAddr != "" {
		ln, err := net.Listen("tcp", listenAddr)
		if err != nil {
			return sc, fmt.Errorf("listening on %s: %v", listenAddr, err)
		}
		fmt.Fprintf(stderr, "fsbench: accepting sweep workers on %s\n", ln.Addr())
		sc.Listener = ln
	}
	if cacheDir != "" {
		cache, err := sweep.OpenCache(cacheDir)
		if err != nil {
			return sc, err
		}
		cache.SetMaxBytes(cacheMaxBytes)
		sc.Cache = cache
	}
	return sc, nil
}

// runSharded runs the full sweep through the multi-process coordinator.
// The merged *harness.Results lands in *res.
func runSharded(cfg harness.Config, procs int, listenAddr, cacheDir string, cacheMaxBytes int64, cellTimeout, progressEvery time.Duration, replayMode string, res **harness.Results, stderr io.Writer) (sweep.Stats, int) {
	sc, err := sweepConfig(cfg, procs, listenAddr, cacheDir, cacheMaxBytes, cellTimeout, progressEvery, replayMode, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "fsbench: %v\n", err)
		return sweep.Stats{}, 1
	}
	out, stats, err := sweep.Run(sc)
	if err != nil {
		fmt.Fprintf(stderr, "fsbench: %v\n", err)
		return stats, 1
	}
	*res = out
	return stats, 0
}

// runShardedReplay implements -replay-shards: plan contiguous phase
// ranges over the indexed trace, run each range as an independent
// `trace:<path>@lo-hi` cell — in-process on up to localWorkers
// goroutines, or across sweep worker processes when -workers-procs or
// -listen is set — and print the merged per-shard report. The report is
// a pure function of the plan and the deterministic per-cell results,
// so the bytes are identical at any worker count, in-process or not.
func runShardedReplay(cfg harness.Config, app string, shards, localWorkers, procs int, listenAddr, cacheDir string, cacheMaxBytes int64, cellTimeout, progressEvery time.Duration, replayMode string, stdout, stderr io.Writer) int {
	plan, err := harness.TraceShardPlan(app, shards, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "fsbench: %v\n", err)
		return 1
	}
	var results map[string]harness.CellResult
	if procs > 0 || listenAddr != "" {
		sc, err := sweepConfig(cfg, procs, listenAddr, cacheDir, cacheMaxBytes, cellTimeout, progressEvery, replayMode, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "fsbench: %v\n", err)
			return 1
		}
		cells := make([]harness.Cell, len(plan))
		for i := range plan {
			cells[i] = plan[i].Cell
		}
		var stats sweep.Stats
		results, stats, err = sweep.RunCells(sc, cells)
		if err != nil {
			fmt.Fprintf(stderr, "fsbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "fsbench: sharded replay of %d shards: %d cached, %d executed on %d workers, %d retries, %d respawns\n",
			stats.Cells, stats.Cached, stats.Executed, stats.Workers, stats.Retries, stats.Respawns)
	} else {
		w := localWorkers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		results, err = harness.RunShardsLocal(plan, w)
		if err != nil {
			fmt.Fprintf(stderr, "fsbench: %v\n", err)
			return 1
		}
	}
	out, err := harness.FormatShardedReplay(plan, results)
	if err != nil {
		fmt.Fprintf(stderr, "fsbench: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, out)
	return 0
}

// gitCommit resolves the source revision for the bench trajectory:
// preferably the revision the binary was built from (embedded VCS build
// info), falling back to the working directory's git HEAD (the
// `go run ./cmd/fsbench` case, where no VCS info is stamped), and
// "unknown" outside any checkout.
func gitCommit() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// writeFileAtomic writes data to path via a temp file in the same
// directory plus rename, so an interrupted run can never leave a
// truncated trajectory file behind.
func writeFileAtomic(path string, data []byte) error {
	return atomicfile.WriteFile(path, data, 0o644)
}
