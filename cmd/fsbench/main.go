// Command fsbench regenerates the tables and figures of the paper's
// evaluation (§4).
//
// Usage:
//
//	fsbench -experiment fig1|fig4|fig5|fig7|table1|compare|ablation|all
//	        [-scale 1.0] [-threads 16] [-workers 0] [-app linear_regression]
//	        [-bench-out BENCH_harness.json]
//
// Each experiment prints the same rows or series the paper reports.
// Experiment cells run concurrently on a -workers pool (0 = GOMAXPROCS, 1 = serial);
// results are identical at any worker count. With -experiment all,
// -bench-out additionally writes a machine-readable trajectory entry
// (headline metrics, wall-clock, cells executed) so performance and
// result drift can be tracked across revisions; the file is written
// atomically (temp file + rename), so an interrupted run cannot
// truncate it.
//
// Recorded memory-access traces sweep like any workload: pass
// `trace:<path>` wherever an application name is accepted, e.g.
// `fsbench -experiment fig5 -app trace:run.trace`.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fsbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	experiment := fs.String("experiment", "all",
		"which experiment to run: fig1, fig4, fig5, fig7, table1, compare, ablation, all")
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	threads := fs.Int("threads", 16, "worker threads per parallel phase")
	workers := fs.Int("workers", 0, "max concurrent experiment cells (0 = GOMAXPROCS, 1 = serial)")
	app := fs.String("app", "linear_regression", "application for fig5 (case study report)")
	benchOut := fs.String("bench-out", "",
		"path for the machine-readable bench trajectory entry (with -experiment all)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	// Trace pseudo-workloads are validated up front — the full pipeline,
	// not just decoding: workload Build cannot return errors (it panics,
	// inside a harness worker), so a bad path, corrupt file or
	// unrestorable layout is diagnosed here instead.
	if workload.IsTraceName(*app) {
		if err := trace.Validate(strings.TrimPrefix(*app, workload.TracePrefix)); err != nil {
			fmt.Fprintf(stderr, "fsbench: %v\n", err)
			return 1
		}
	}

	cfg := harness.Config{Scale: *scale, Threads: *threads, Workers: *workers}

	switch *experiment {
	case "all":
		r := harness.NewRunner(cfg.Workers)
		start := time.Now()
		res := harness.RunAllWith(r, cfg)
		elapsed := time.Since(start)
		fmt.Fprint(stdout, res.Format())
		if *benchOut != "" {
			resolved := cfg.Workers
			if resolved <= 0 {
				resolved = runtime.GOMAXPROCS(0)
			}
			entry := harness.BenchEntry{
				Schema:      harness.BenchSchema,
				Workers:     resolved,
				CellsRun:    r.CellsRun(),
				WallSeconds: elapsed.Seconds(),
				Scale:       *scale,
				Threads:     *threads,
				Metrics:     res.Metrics(),
			}
			b, err := entry.MarshalIndent()
			if err == nil {
				err = writeFileAtomic(*benchOut, b)
			}
			if err != nil {
				fmt.Fprintf(stderr, "fsbench: writing %s: %v\n", *benchOut, err)
				return 1
			}
			fmt.Fprintf(stdout, "\nwrote bench trajectory entry to %s (%d cells, %.1fs)\n",
				*benchOut, entry.CellsRun, entry.WallSeconds)
		}
	case "fig1":
		fmt.Fprint(stdout, harness.FormatFigure1(harness.Figure1(cfg)))
	case "fig4":
		fmt.Fprint(stdout, harness.FormatFigure4(harness.Figure4(cfg)))
	case "fig5":
		_, text := harness.Figure5(*app, cfg)
		fmt.Fprintf(stdout, "Figure 5: Cheetah report for %s\n\n%s", *app, text)
	case "fig7":
		fmt.Fprint(stdout, harness.FormatFigure7(harness.Figure7(cfg)))
	case "table1":
		fmt.Fprint(stdout, harness.FormatTable1(harness.Table1(cfg)))
	case "compare":
		fmt.Fprint(stdout, harness.FormatCompare(harness.Compare(cfg)))
	case "ablation":
		fmt.Fprint(stdout, harness.FormatPeriodAblation(harness.PeriodAblation(cfg)))
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, harness.FormatRuleAblation(harness.RuleAblation(cfg)))
	default:
		fmt.Fprintf(stderr, "fsbench: unknown experiment %q\n", *experiment)
		fs.Usage()
		return 2
	}
	return 0
}

// writeFileAtomic writes data to path via a temp file in the same
// directory plus rename, so an interrupted run can never leave a
// truncated trajectory file behind.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
