package cheetah

import "repro/internal/obs"

// Directory-occupancy gauges, sampled once per completed run in
// RunTraced — see the comment there for why this is not live.
var (
	mDirLines = obs.GetGauge("cheetah_cache_dir_lines",
		"Distinct cache lines touched by the most recently completed run.")
	mDirLinesMax = obs.GetGauge("cheetah_cache_dir_lines_max",
		"High-water mark of distinct cache lines touched by any run in this process.")
)
