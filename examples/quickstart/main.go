// Quickstart: build a tiny multithreaded program with a false sharing
// bug, run it under the Cheetah profiler, and read the report.
//
// Four threads each increment their own counter — but the counters are
// adjacent 4-byte words in one cache line, so every increment invalidates
// the other cores' copies. Cheetah detects the object, distinguishes the
// pattern from true sharing, and predicts the speedup of padding it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	cheetah "repro"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/pmu"
)

func main() {
	sys := cheetah.New(cheetah.Config{Cores: 8})

	// Allocate the counters through the instrumented heap so the profiler
	// can resolve the object back to this "call site".
	counters := sys.Heap().Malloc(mem.MainThread, 16,
		heap.Stack(heap.Frame{Func: "main", File: "quickstart.go", Line: 27}))

	const threads = 4
	const iters = 150_000
	bodies := make([]cheetah.Body, threads)
	for i := 0; i < threads; i++ {
		mine := counters.Add(i * 4) // adjacent words: the bug
		bodies[i] = func(t *cheetah.T) {
			for j := 0; j < iters; j++ {
				t.Load(mine) // counter++
				t.Compute(1)
				t.Store(mine)
			}
		}
	}

	prog := cheetah.Program{
		Name: "quickstart",
		Phases: []cheetah.Phase{
			// A short serial phase gives the profiler its
			// no-false-sharing latency baseline.
			cheetah.SerialPhase("init", func(t *cheetah.T) {
				for i := 0; i < threads; i++ {
					t.Store(counters.Add(i * 4))
					for s := 0; s < 8; s++ {
						t.Load(counters.Add(i * 4))
					}
					t.Compute(3)
				}
			}),
			cheetah.ParallelPhase("count", bodies...),
		},
	}

	report, res := sys.Profile(prog, cheetah.ProfileOptions{
		PMU: pmu.Config{Period: 256, Jitter: 64},
	})

	fmt.Print(report.Format())
	fmt.Printf("\nruntime with profiler: %d cycles\n", res.TotalCycles)

	if len(report.Instances) > 0 {
		in := report.Instances[0]
		fmt.Printf("\nCheetah predicts a %.2fx speedup from padding the counters.\n",
			in.Assessment.Improvement)
		fmt.Println("\nWord-level accesses (who touched which word):")
		fmt.Print(in.FormatWords())
	}
}
