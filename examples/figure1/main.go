// The paper's Figure 1: the canonical false sharing microbenchmark.
//
//	int array[total];
//	void threadFunc(int start) {
//	    for (index = start; index < start+window; index++)
//	        for (j = 0; j < 10000000; j++)
//	            array[index]++;
//	}
//
// Threads increment adjacent array elements packed into the same cache
// lines; the program runs an order of magnitude slower than its
// linear-speedup expectation. This example regenerates Figure 1(b)'s
// expectation-vs-reality bars and shows the padded fix restoring the
// expected scaling.
//
//	go run ./examples/figure1
package main

import (
	"fmt"
	"strings"

	"repro/internal/harness"
)

func main() {
	rows := harness.Figure1(harness.Config{})

	fmt.Println("Figure 1(b): expectation vs reality on the false-sharing microbenchmark")
	fmt.Println()
	fmt.Printf("%-8s %-16s %-16s %-10s %s\n", "threads", "expectation", "reality", "slowdown", "")
	for _, r := range rows {
		bar := strings.Repeat("#", int(r.Slowdown()+0.5))
		fmt.Printf("%-8d %-16.0f %-16d %-10.1f %s\n",
			r.Threads, r.Expectation, r.Reality, r.Slowdown(), bar)
	}

	fmt.Println()
	fmt.Println("With each element padded to its own cache line, reality meets expectation:")
	for _, r := range rows {
		ratio := float64(r.Fixed) / r.Expectation
		fmt.Printf("threads=%d  fixed/expectation = %.2f\n", r.Threads, ratio)
	}
}
