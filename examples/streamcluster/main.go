// The paper's second case study (§4.2.2): PARSEC's streamcluster.
//
// streamcluster's authors already padded the per-thread work_mem entries
// — but with a CACHE_LINE macro set to 32 bytes, half the machine's
// actual 64-byte line, so adjacent threads' entries still share lines.
// The false sharing is real but mild (most work is reading the point
// block), making it exactly the kind of instance where Cheetah's impact
// assessment matters: it reports the problem with a predicted gain of a
// few percent, so a developer can decide whether the fix is worth it.
//
//	go run ./examples/streamcluster
package main

import (
	"fmt"

	cheetah "repro"
	"repro/internal/harness"
	"repro/internal/workload"
)

func main() {
	w, _ := workload.ByName("streamcluster")

	fmt.Println("streamcluster: under-padded work_mem (CACHE_LINE assumed 32B, lines are 64B)")
	fmt.Println()

	for _, threads := range []int{16, 8, 4, 2} {
		sys := cheetah.New(cheetah.Config{})
		prog := w.Build(sys, workload.Params{Threads: threads})
		report, _ := sys.Profile(prog, cheetah.ProfileOptions{PMU: harness.DetectionPMU()})

		predicted := 0.0
		detected := false
		for _, in := range report.Instances {
			if in.Object.Stack.Site().Line == 985 {
				predicted = in.Assessment.Improvement
				detected = true
			}
		}

		bSys := cheetah.New(cheetah.Config{})
		broken := bSys.Run(w.Build(bSys, workload.Params{Threads: threads}))
		fSys := cheetah.New(cheetah.Config{})
		fixed := fSys.Run(w.Build(fSys, workload.Params{Threads: threads, Fixed: true}))
		real := float64(broken.TotalCycles) / float64(fixed.TotalCycles)

		status := "not reported"
		if detected {
			status = fmt.Sprintf("predicted %.3fx", predicted)
		}
		fmt.Printf("threads=%2d  real improvement %.3fx  %s\n", threads, real, status)
	}

	fmt.Println()
	fmt.Println("Full report at 16 threads:")
	sys := cheetah.New(cheetah.Config{})
	prog := w.Build(sys, workload.Params{Threads: 16})
	report, _ := sys.Profile(prog, cheetah.ProfileOptions{PMU: harness.DetectionPMU()})
	fmt.Print(report.Format())
}
