// The paper's flagship case study (§4.2.1): Phoenix's linear_regression.
//
// Each thread accumulates five regression sums into its own entry of the
// shared tid_args array allocated at linear_regression-pthread.c:139.
// Entries pack at 40 bytes, so adjacent threads' accumulators share cache
// lines and every update ping-pongs lines between cores.
//
// This example reproduces the full §4.2.1 workflow: profile the broken
// program (paper Figure 5's report), apply the one-line padding fix, and
// compare the measured speedup with Cheetah's prediction.
//
//	go run ./examples/linearregression
package main

import (
	"fmt"

	cheetah "repro"
	"repro/internal/harness"
	"repro/internal/workload"
)

func main() {
	const threads = 16
	w, _ := workload.ByName("linear_regression")

	// Step 1: run the original program under Cheetah.
	sys := cheetah.New(cheetah.Config{})
	prog := w.Build(sys, workload.Params{Threads: threads})
	report, _ := sys.Profile(prog, cheetah.ProfileOptions{PMU: harness.DetectionPMU()})
	fmt.Println("=== Cheetah report (paper Figure 5) ===")
	fmt.Print(report.Format())

	if len(report.Instances) == 0 {
		fmt.Println("no instance detected; increase scale")
		return
	}
	predicted := report.Instances[0].Assessment.Improvement

	// Step 2: "By adding 64 bytes of useless content, we can force
	// different threads to not access the same cache line" — run the
	// padded variant and measure the real speedup.
	brokenSys := cheetah.New(cheetah.Config{})
	broken := brokenSys.Run(w.Build(brokenSys, workload.Params{Threads: threads}))
	fixedSys := cheetah.New(cheetah.Config{})
	fixed := fixedSys.Run(w.Build(fixedSys, workload.Params{Threads: threads, Fixed: true}))

	real := float64(broken.TotalCycles) / float64(fixed.TotalCycles)
	fmt.Println("\n=== Fix validation (paper Table 1) ===")
	fmt.Printf("original runtime: %12d cycles\n", broken.TotalCycles)
	fmt.Printf("padded runtime:   %12d cycles\n", fixed.TotalCycles)
	fmt.Printf("real improvement:      %.2fx\n", real)
	fmt.Printf("Cheetah predicted:     %.2fx\n", predicted)
	fmt.Printf("difference:            %+.1f%%\n", (real-predicted)/real*100)
}
