// Trace record/replay: record every memory access of a program with a
// false sharing bug, replay the trace through a fresh simulator, and
// confirm the replayed detection report is byte-identical to the
// original — the subsystem's round-trip guarantee.
//
// The directory also ships sample.trace, a recorded trace of this
// program in the line-oriented text format (open it in an editor: data
// rows are `tid op addr size ip lat phase`, metadata rows are
// `#`-prefixed). If the file is found it is replayed too, showing that
// a trace profiles like any workload — no source required.
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"
	"os"

	cheetah "repro"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/pmu"
	"repro/internal/trace"
)

// densePMU samples densely enough for this tiny program.
func densePMU() pmu.Config { return pmu.Config{Period: 8, Jitter: 2} }

// buildProgram assembles four threads hammering adjacent words of one
// heap object — the canonical false sharing storm.
func buildProgram(sys *cheetah.System) cheetah.Program {
	counters := sys.Heap().Malloc(mem.MainThread, 16,
		heap.Stack(heap.Frame{Func: "main", File: "tracereplay.go", Line: 33}))
	const threads, iters = 4, 2000
	bodies := make([]cheetah.Body, threads)
	for i := 0; i < threads; i++ {
		mine := counters.Add(i * 4)
		bodies[i] = func(t *cheetah.T) {
			for j := 0; j < iters; j++ {
				t.Load(mine)
				t.Compute(1)
				t.Store(mine)
			}
		}
	}
	return cheetah.Program{Name: "tracereplay", Phases: []cheetah.Phase{
		cheetah.SerialPhase("init", func(t *cheetah.T) {
			for i := 0; i < threads*8; i++ {
				t.Store(counters.Add(i % 16 * 4))
				t.Compute(2)
			}
		}),
		cheetah.ParallelPhase("count", bodies...),
	}}
}

func main() {
	// 1. Profile the program while recording its full access trace.
	sys := cheetah.New(cheetah.Config{Cores: 8})
	prog := buildProgram(sys)
	var buf bytes.Buffer
	rec := trace.NewRecorder(trace.NewTextEncoder(&buf), sys.Heap(), sys.Globals())
	prof := sys.NewProfiler(cheetah.ProfileOptions{PMU: densePMU()})
	sys.RunWith(prog, append(prof.Probes(), rec)...)
	if err := rec.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "recording:", err)
		os.Exit(1)
	}
	original := prof.Report()
	fmt.Printf("recorded %d bytes of trace while profiling\n\n", buf.Len())
	fmt.Print(original.Format())

	// 2. Replay the trace on a fresh system: no program source, only the
	// recorded access stream and its metadata preamble.
	replayed, err := replayTrace(buf.Bytes())
	if err != nil {
		fmt.Fprintln(os.Stderr, "replaying:", err)
		os.Exit(1)
	}
	identical := original.Format() == replayed.Format()
	fmt.Printf("\nreplayed report byte-identical to original: %v\n", identical)
	if !identical {
		os.Exit(1)
	}

	// 3. Replay the shipped sample trace, if running from a directory
	// where it is visible.
	for _, path := range []string{"examples/tracereplay/sample.trace", "sample.trace"} {
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		rep, err := replayTrace(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "replaying", path, ":", err)
			os.Exit(1)
		}
		fmt.Printf("\nreplayed shipped %s (%d samples):\n%s", path, rep.Samples, rep.Format())
		break
	}
}

// replayTrace reconstructs and profiles the traced program.
func replayTrace(data []byte) (*cheetah.Report, error) {
	rp, err := trace.Read(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	sys := cheetah.New(cheetah.Config{Cores: rp.Cores})
	if err := rp.Prepare(sys.Heap(), sys.Globals()); err != nil {
		return nil, err
	}
	rep, _ := sys.Profile(rp.Program(), cheetah.ProfileOptions{PMU: densePMU()})
	return rep, nil
}
