// The report half of the engine equivalence suites: randomized programs
// profiled end to end — heap allocation, PMU sampling, detection, word
// classification, EQ(1)–EQ(4) assessment, formatting — must print
// byte-identical reports under all three schedulers and under the
// batched timeslice runner versus its per-op reference loop. The engine
// half (per-thread clock trajectories and access streams) lives in
// internal/exec; this level catches anything those dimensions could
// perturb downstream of the engine.
package cheetah_test

import (
	"fmt"
	"testing"

	cheetah "repro"
	"repro/internal/exec"
	"repro/internal/exec/progen"
	"repro/internal/harness"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/pmu"
)

// reportEquivSeed pins the randomized report suite; failures reproduce
// from (seed, case index) alone.
const reportEquivSeed = 0xBEEF_FEED

// reportEquivCases: ≥200 randomized programs in -short (the CI push
// gate), ≥2000 in the nightly paper-scale run.
func reportEquivCases() int {
	if testing.Short() {
		return 200
	}
	return 2000
}

// profiledReportUnder builds a fresh system with the given scheduler and
// engine loop (batched or the unbatched reference), allocates the same
// heap objects and globals, generates case i, and returns every byte the
// profiler would show a user: the formatted report, per-instance word
// detail, and the run's timing line.
func profiledReportUnder(sched string, unbatched bool, i int, p pmu.Config) string {
	sys := cheetah.New(cheetah.Config{Cores: 8, Engine: exec.Config{Sched: sched, Unbatched: unbatched}})
	objA := sys.Heap().Malloc(0, 256, heap.Stack(heap.Frame{File: "equiv.c", Line: 10, Func: "alloc_a"}))
	objB := sys.Heap().Malloc(1, 512, heap.Stack(heap.Frame{File: "equiv.c", Line: 20, Func: "alloc_b"}))
	glob := sys.Globals().Define("equiv_global", 128)

	prog := progen.Generate(progen.Config{
		Seed:       reportEquivSeed,
		Case:       i,
		Addrs:      []mem.Addr{objA, objB, glob},
		MaxThreads: 12,
	})
	rep, res := sys.Profile(prog, cheetah.ProfileOptions{PMU: p})

	out := rep.Format()
	for j := range rep.Instances {
		out += rep.Instances[j].FormatWords()
	}
	out += fmt.Sprintf("runtime %d cycles across %d phases, %d threads\n",
		res.TotalCycles, len(res.Phases), len(res.Threads))
	return out
}

// TestSchedulerReportEquivalence: every randomized program produces a
// byte-identical detection report under the sorted (default), heap and
// calendar schedulers. Cases grow from trivially small, so a first
// failing index is near-minimal.
func TestSchedulerReportEquivalence(t *testing.T) {
	t.Parallel()
	p := harness.DetectionPMU() // dense sampling: tiny programs still produce samples
	for i := 0; i < reportEquivCases(); i++ {
		ref := profiledReportUnder(exec.SchedSorted, false, i, p)
		for _, sched := range []string{exec.SchedHeap, exec.SchedCalendar} {
			out := profiledReportUnder(sched, false, i, p)
			if out != ref {
				t.Fatalf("case %d (seed %#x): reports diverge\n--- %s ---\n%s\n--- %s ---\n%s",
					i, reportEquivSeed, exec.SchedSorted, ref, sched, out)
			}
		}
	}
}

// TestBatchedUnbatchedReportEquivalence: the batched timeslice runner
// and its per-op reference loop print byte-identical detection reports
// for every randomized program, under all three schedulers. This is the
// end-to-end half of the batched-engine proof — PMU sampling, detection,
// word classification, assessment and formatting all sit downstream of
// the engine hot path this suite pins.
func TestBatchedUnbatchedReportEquivalence(t *testing.T) {
	t.Parallel()
	p := harness.DetectionPMU()
	for i := 0; i < reportEquivCases(); i++ {
		ref := profiledReportUnder(exec.SchedSorted, false, i, p)
		for _, sched := range exec.SchedulerNames() {
			out := profiledReportUnder(sched, true, i, p)
			if out != ref {
				t.Fatalf("case %d (seed %#x): unbatched %s report diverges from batched %s\n--- batched ---\n%s\n--- unbatched ---\n%s",
					i, reportEquivSeed, sched, exec.SchedSorted, ref, out)
			}
		}
	}
}
