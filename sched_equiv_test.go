// The report half of the cross-scheduler equivalence suite: randomized
// programs profiled end to end — heap allocation, PMU sampling,
// detection, word classification, EQ(1)–EQ(4) assessment, formatting —
// must print byte-identical reports under the heap and calendar
// schedulers. The engine half (per-thread clock trajectories and access
// streams) lives in internal/exec; this level catches anything a
// scheduler could perturb downstream of the engine.
package cheetah_test

import (
	"fmt"
	"testing"

	cheetah "repro"
	"repro/internal/exec"
	"repro/internal/exec/progen"
	"repro/internal/harness"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/pmu"
)

// reportEquivSeed pins the randomized report suite; failures reproduce
// from (seed, case index) alone.
const reportEquivSeed = 0xBEEF_FEED

// reportEquivCases: ≥200 randomized programs in -short (the CI push
// gate), ≥2000 in the nightly paper-scale run.
func reportEquivCases() int {
	if testing.Short() {
		return 200
	}
	return 2000
}

// profiledReportUnder builds a fresh system with the given scheduler,
// allocates the same heap objects and globals, generates case i, and
// returns every byte the profiler would show a user: the formatted
// report, per-instance word detail, and the run's timing line.
func profiledReportUnder(sched string, i int, p pmu.Config) string {
	sys := cheetah.New(cheetah.Config{Cores: 8, Engine: exec.Config{Sched: sched}})
	objA := sys.Heap().Malloc(0, 256, heap.Stack(heap.Frame{File: "equiv.c", Line: 10, Func: "alloc_a"}))
	objB := sys.Heap().Malloc(1, 512, heap.Stack(heap.Frame{File: "equiv.c", Line: 20, Func: "alloc_b"}))
	glob := sys.Globals().Define("equiv_global", 128)

	prog := progen.Generate(progen.Config{
		Seed:       reportEquivSeed,
		Case:       i,
		Addrs:      []mem.Addr{objA, objB, glob},
		MaxThreads: 12,
	})
	rep, res := sys.Profile(prog, cheetah.ProfileOptions{PMU: p})

	out := rep.Format()
	for j := range rep.Instances {
		out += rep.Instances[j].FormatWords()
	}
	out += fmt.Sprintf("runtime %d cycles across %d phases, %d threads\n",
		res.TotalCycles, len(res.Phases), len(res.Threads))
	return out
}

// TestSchedulerReportEquivalence: every randomized program produces a
// byte-identical detection report under both schedulers. Cases grow
// from trivially small, so a first failing index is near-minimal.
func TestSchedulerReportEquivalence(t *testing.T) {
	t.Parallel()
	p := harness.DetectionPMU() // dense sampling: tiny programs still produce samples
	for i := 0; i < reportEquivCases(); i++ {
		heapOut := profiledReportUnder(exec.SchedHeap, i, p)
		calOut := profiledReportUnder(exec.SchedCalendar, i, p)
		if heapOut != calOut {
			t.Fatalf("case %d (seed %#x): reports diverge\n--- heap ---\n%s\n--- calendar ---\n%s",
				i, reportEquivSeed, heapOut, calOut)
		}
	}
}
