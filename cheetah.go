// Package cheetah is a from-scratch reproduction of "Cheetah: Detecting
// False Sharing Efficiently and Effectively" (Tongping Liu and Xu Liu,
// CGO 2016).
//
// Cheetah is a lightweight profiler that detects false sharing in
// multithreaded programs using PMU address sampling, and — its headline
// contribution — predicts the speedup of fixing each instance without
// actually fixing it.
//
// Because real PMUs cannot be driven faithfully from Go, the reproduction
// runs programs on a simulated multicore machine: a MESI cache-coherence
// simulator supplies access latencies and ground-truth invalidations, a
// deterministic engine interleaves simulated threads in virtual-time
// order, and an IBS/PEBS-style sampler delivers address samples with
// latency to the profiler. The profiler itself — two-entry-table
// invalidation detection, word-granularity true/false sharing
// discrimination, and the EQ(1)-EQ(4) impact assessment — is implemented
// exactly as the paper describes.
//
// # Quick start
//
//	sys := cheetah.New(cheetah.Config{Cores: 8})
//	obj := sys.Heap().Malloc(0, 4096, heap.Stack(heap.Frame{File: "app.c", Line: 42}))
//	prog := cheetah.Program{
//		Name: "quickstart",
//		Phases: []cheetah.Phase{
//			cheetah.ParallelPhase("work", bodies...),
//		},
//	}
//	report, _ := sys.Profile(prog, cheetah.ProfileOptions{})
//	fmt.Print(report.Format())
package cheetah

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/machine"
	"repro/internal/pmu"
	"repro/internal/symtab"
)

// Re-exported program-construction types: programs are sequences of
// serial and parallel phases whose thread bodies issue loads, stores and
// compute through a *T.
type (
	// Program is a fork-join simulated program.
	Program = exec.Program
	// Phase is one serial or parallel region.
	Phase = exec.Phase
	// Body is a thread function.
	Body = exec.Body
	// T is the context thread bodies issue operations through.
	T = exec.T
	// Result is an execution's timing record.
	Result = exec.Result
	// Report is the profiler's output.
	Report = core.Report
	// Instance is one reported false sharing instance.
	Instance = core.Instance
)

// SerialPhase builds a main-thread-only phase.
func SerialPhase(name string, body Body) Phase { return exec.SerialPhase(name, body) }

// ParallelPhase builds a phase with one thread per body.
func ParallelPhase(name string, bodies ...Body) Phase {
	return exec.ParallelPhase(name, bodies...)
}

// PooledPhase builds a parallel phase whose workers come from the
// program's persistent thread pool (threads are created once and reused
// across pooled phases, as in barrier-driven programs like streamcluster).
func PooledPhase(name string, bodies ...Body) Phase {
	return exec.PooledPhase(name, bodies...)
}

// Config assembles a simulated system.
type Config struct {
	// Cores is the machine size; defaults to the machine model's core
	// count (48 for the canonical opteron48).
	Cores int
	// Machine is the hardware model: topology, line geometry, latency
	// table, coherence protocol. The zero value means the canonical
	// opteron48 (machine.Default()), which reproduces the pre-model
	// behavior byte for byte.
	Machine machine.Model
	// Cache overrides the machine configuration; zero derives the
	// calibrated config from Machine and Cores.
	Cache cache.Config
	// Engine overrides engine costs; zero uses defaults.
	Engine exec.Config
	// Heap and Globals override the memory-layout segments.
	Heap    heap.Config
	Globals symtab.Config
}

// ProfileOptions tunes a profiled run.
type ProfileOptions struct {
	// PMU configures sampling; zero uses the paper's 64K-instruction
	// period with the calibrated handler and setup costs.
	PMU pmu.Config
	// MinInvalidations and MinImprovement are reporting thresholds; zero
	// uses the defaults.
	MinInvalidations uint64
	MinImprovement   float64
}

// System is a simulated machine plus the memory layout (heap and globals)
// programs allocate from. Each Run gets a fresh, cold machine so results
// are reproducible and comparable; the memory layout persists, since it
// is part of the program under test.
type System struct {
	cfg     Config
	model   machine.Model
	heap    *heap.Heap
	globals *symtab.Table
}

// New creates a system. Zero-value fields get evaluation defaults.
func New(cfg Config) *System {
	model := cfg.Machine
	if model.IsZero() {
		model = machine.Default()
	}
	if cfg.Cores == 0 {
		cfg.Cores = model.Cores()
	} else {
		model = model.WithCores(cfg.Cores)
	}
	cfg.Machine = model
	if cfg.Cache.Cores == 0 {
		cfg.Cache = cache.ConfigFor(model)
	}
	if cfg.Engine.OpBuffer == 0 {
		// Zero-value engine costs get the defaults; the scheduler choice
		// rides along untouched (Sched alone does not imply custom costs).
		sched := cfg.Engine.Sched
		cfg.Engine = exec.DefaultConfig()
		cfg.Engine.Sched = sched
	}
	if cfg.Heap.Size == 0 {
		cfg.Heap = heap.DefaultConfig()
	}
	if cfg.Globals.Size == 0 {
		cfg.Globals = symtab.DefaultConfig()
	}
	return &System{
		cfg:     cfg,
		model:   cfg.Machine,
		heap:    heap.New(cfg.Heap),
		globals: symtab.New(cfg.Globals),
	}
}

// Model returns the machine model the system simulates.
func (s *System) Model() machine.Model { return s.model }

// Heap returns the application heap; workloads allocate through it so the
// profiler can resolve objects to call sites.
func (s *System) Heap() *heap.Heap { return s.heap }

// Globals returns the symbol table; workloads define global variables
// through it.
func (s *System) Globals() *symtab.Table { return s.globals }

// Cores returns the machine size.
func (s *System) Cores() int { return s.cfg.Cores }

// Run executes the program natively (no profiler) on a fresh machine.
func (s *System) Run(p Program) Result {
	return s.RunWith(p)
}

// RunWith executes the program on a fresh machine under the given probes.
func (s *System) RunWith(p Program, probes ...exec.Probe) Result {
	res, _ := s.RunTraced(p, probes...)
	return res
}

// RunTraced executes the program on a fresh machine under the given
// probes and additionally returns the machine, whose ground-truth
// coherence counters (per-line invalidations, hit/miss breakdown)
// validation experiments consult.
func (s *System) RunTraced(p Program, probes ...exec.Probe) (Result, *cache.Sim) {
	sim := cache.New(s.cfg.Cache)
	eng := exec.New(sim, s.cfg.Engine, probes...)
	res := eng.Run(p)
	// Directory occupancy is sampled once per run, after the fact: each
	// run gets a fresh machine, so a live per-access gauge would cost hot
	// cycles for a number that only settles here.
	lines := int64(sim.DirLines())
	mDirLines.Set(lines)
	mDirLinesMax.SetMax(lines)
	return res, sim
}

// NewProfiler builds a Cheetah profiler wired to this system's heap and
// symbol table.
func (s *System) NewProfiler(o ProfileOptions) *core.Profiler {
	opts := core.DefaultOptions(s.heap, s.globals)
	opts.Geometry = s.model.Geometry()
	if o.PMU.Period != 0 {
		opts.PMU = o.PMU
	}
	if o.MinInvalidations != 0 {
		opts.MinInvalidations = o.MinInvalidations
	}
	if o.MinImprovement != 0 {
		opts.MinImprovement = o.MinImprovement
	}
	return core.New(opts)
}

// Profile runs the program under Cheetah on a fresh machine and returns
// the false sharing report and the (profiler-overhead-inclusive) timing.
func (s *System) Profile(p Program, o ProfileOptions) (*Report, Result) {
	prof := s.NewProfiler(o)
	res := s.RunWith(p, prof.Probes()...)
	return prof.Report(), res
}
